"""QueryService — cache tiers, determinism tripwires, CLI loop.

The headline properties under test: one JSONL batch produces
byte-identical prediction streams *and* counter dumps whether it runs
serially or fanned over the pool, and whether the shard cache is cold
or warm (warm hits replay their stored counter deltas).  Plus the
result cache's LRU size guard and the serve CLI round trip.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.session import ObsSession
from repro.perf.cache import ResultCache
from repro.serve import QueryService, parse_query
from repro.serve.service import STATS_SCHEMA


def _batch_lines():
    """A mixed batch: three devices, dedup, an unsupported query, an
    in-stream parse error, a family-level experiment query."""
    lines = []
    for dev in ("H800", "A100", "RTX4090"):
        for m in (256, 512):
            lines.append(json.dumps(
                {"kind": "te.linear", "device": dev,
                 "precision": "fp16",
                 "params": {"m": m, "n": m, "k": m},
                 "id": f"lin-{dev}-{m}"}))
        lines.append(json.dumps(
            {"kind": "mma", "device": dev,
             "params": {"ab": "fp16", "cd": "fp32",
                        "m": 16, "n": 8, "k": 16}}))
    lines.append(lines[0])                      # duplicate
    lines.append(json.dumps(
        {"kind": "wgmma", "device": "V100",
         "params": {"ab": "fp16", "cd": "fp32", "n": 64},
         "id": "unsup"}))
    lines.append("{not json")                   # in-stream error
    lines.append(json.dumps(
        {"kind": "experiment",
         "params": {"name": "table03_devices"}}))
    return lines


def _run(lines, *, jobs, root):
    session = ObsSession()
    with session.activate():
        service = QueryService(cache=ResultCache(root=root),
                               jobs=jobs)
        text = service.answer_lines_text(lines)
    return (text, json.dumps(session.counters.as_dict()),
            json.dumps(session.experiment_counters()), service)


class TestDeterminism:
    def test_serial_vs_parallel_byte_identical(self, tmp_path):
        lines = _batch_lines()
        t1, c1, e1, _ = _run(lines, jobs=1, root=tmp_path / "a")
        t4, c4, e4, _ = _run(lines, jobs=4, root=tmp_path / "b")
        assert t1 == t4
        assert c1 == c4
        assert e1 == e4

    def test_cold_vs_warm_byte_identical(self, tmp_path):
        lines = _batch_lines()
        root = tmp_path / "cache"
        cold = _run(lines, jobs=1, root=root)
        warm = _run(lines, jobs=1, root=root)
        assert cold[:3] == warm[:3]
        # and the warm run really was served from the blob tier
        warm_stats = warm[3].stats.as_dict()
        assert warm_stats.get("serve.cache.blob_hits", 0) > 0
        assert warm_stats.get("serve.cache.shard_misses", 0) == 0

    def test_memo_tier_short_circuits_repeat_batches(self, tmp_path):
        lines = _batch_lines()
        session = ObsSession()
        with session.activate():
            service = QueryService(
                cache=ResultCache(root=tmp_path), jobs=1)
            first = service.answer_lines_text(lines)
            second = service.answer_lines_text(lines)
        assert first == second
        stats = service.stats.as_dict()
        assert stats["serve.cache.memo_hits"] \
            == stats["serve.cache.shard_misses"]

    def test_qids_reattach_after_dedup(self, tmp_path):
        q = {"kind": "dsm.bandwidth", "device": "H800",
             "params": {"cluster_size": 4}}
        service = QueryService(cache=None)
        a, b = service.answer_batch([
            parse_query({**q, "id": "first"}),
            parse_query({**q, "id": "second"}),
        ])
        assert a.qid == "first" and b.qid == "second"
        assert a.metrics == b.metrics

    def test_batch_counters_are_input_functions(self, tmp_path):
        lines = _batch_lines()
        _, counters, _, _ = _run(lines, jobs=1, root=tmp_path)
        bank = json.loads(counters)
        assert bank["serve.queries"] == len(lines) - 1  # bad line
        assert bank["serve.errors"] == 1
        assert bank["serve.dedup"] == 1
        assert bank["serve.batches"] == 1
        assert bank["serve.shards"] > 3
        # wall time never enters the deterministic bank
        assert not any(name.startswith("serve.wall")
                       for name in bank)

    def test_stats_payload_shape(self, tmp_path):
        service = QueryService(cache=ResultCache(root=tmp_path))
        service.answer(parse_query(
            {"kind": "mma", "device": "A100",
             "params": {"ab": "fp16", "cd": "fp32",
                        "m": 16, "n": 8, "k": 16}}))
        payload = service.stats_payload()
        assert payload["schema"] == STATS_SCHEMA
        assert any(k.startswith("serve.wall.")
                   for k in payload["stats"])


class TestExperimentFallback:
    def test_family_query_runs_experiment(self, tmp_path):
        p = QueryService(cache=ResultCache(root=tmp_path)).answer(
            parse_query({"kind": "experiment",
                         "params": {"name": "table03_devices"}}))
        assert p.status == "ok"
        assert p.metric("checks_passed") == p.metric("checks_total")
        assert p.metric("rows") > 0

    def test_unknown_name_gets_did_you_mean(self):
        p = QueryService(cache=None).answer(
            parse_query({"kind": "experiment",
                         "params": {"name": "table7_mma"}}))
        assert p.status == "error"
        assert "did you mean" in p.reason
        assert "table07_mma" in p.reason

    def test_pinned_experiment_unsupported_off_device(self):
        p = QueryService(cache=None).answer(parse_query(
            {"kind": "experiment", "device": "A100",
             "params": {"name": "table08_wgmma_dense"}}))
        assert p.status == "unsupported"
        assert "pinned" in p.reason

    def test_derived_context_overrides(self, tmp_path):
        svc = QueryService(cache=ResultCache(root=tmp_path))
        base = svc.answer(parse_query(
            {"kind": "experiment",
             "params": {"name": "table03_devices"}}))
        narrowed = svc.answer(parse_query(
            {"kind": "experiment", "device": "H800",
             "params": {"name": "table03_devices"}}))
        assert narrowed.status == "ok"
        # the single-device context runs fewer per-device checks
        assert narrowed.metric("checks_total") \
            < base.metric("checks_total")


class TestInStreamErrors:
    """One bad line never aborts a batch — the contract REVIEW.md
    caught two crashes against."""

    def test_unknown_device_line_stays_in_stream(self):
        # device validation raises QueryError (not KeyError), so the
        # JSONL loop answers the bad line and keeps streaming
        lines = [
            json.dumps({"kind": "mma", "device": "A1000",
                        "params": {"ab": "fp16", "cd": "fp32",
                                   "m": 16, "n": 8, "k": 16},
                        "id": "bad-dev"}),
            json.dumps({"kind": "mma", "device": "A100",
                        "params": {"ab": "fp16", "cd": "fp32",
                                   "m": 16, "n": 8, "k": 16},
                        "id": "good"}),
        ]
        bad, good = QueryService(cache=None).answer_lines(lines)
        assert bad.status == "error"
        assert bad.qid == "bad-dev"
        assert "did you mean" in bad.reason
        assert good.status == "ok"

    def test_experiment_query_unknown_device_stays_in_stream(self):
        # experiment-kind queries skip device validation at
        # construction; the storage-key derive() must not crash before
        # dispatch's in-stream error path can answer
        lines = [
            json.dumps({"kind": "experiment", "device": "A1000",
                        "params": {"name": "table03_devices"},
                        "id": "bad-dev"}),
            json.dumps({"kind": "dsm.bandwidth", "device": "H800",
                        "params": {"cluster_size": 4},
                        "id": "good"}),
        ]
        bad, good = QueryService(cache=None).answer_lines(lines)
        assert bad.status == "error"
        assert bad.qid == "bad-dev"
        assert "A1000" in bad.reason
        assert good.status == "ok"


class TestMemoBound:
    def _q(self, cluster):
        return parse_query({"kind": "dsm.bandwidth", "device": "H800",
                            "params": {"cluster_size": cluster}})

    def test_memo_is_lru_bounded(self):
        service = QueryService(cache=None, memo_entries=2)
        for cluster in (1, 2, 4, 8):
            service.answer(self._q(cluster))
        assert len(service._memo) == 2
        assert service.stats.as_dict()["serve.memo.evictions"] == 2
        # the newest entries are the survivors: re-asking them hits
        before = service.stats.as_dict().get("serve.cache.memo_hits",
                                             0)
        service.answer(self._q(8))
        assert service.stats.as_dict()["serve.cache.memo_hits"] \
            == before + 1

    def test_memo_env_default(self, monkeypatch):
        from repro.serve.service import (
            _MEMO_DEFAULT,
            default_memo_entries,
        )

        monkeypatch.delenv("HOPPERDISSECT_SERVE_MEMO_MAX_ENTRIES",
                           raising=False)
        assert default_memo_entries() == _MEMO_DEFAULT
        monkeypatch.setenv("HOPPERDISSECT_SERVE_MEMO_MAX_ENTRIES",
                           "7")
        assert default_memo_entries() == 7
        assert QueryService(cache=None).memo_entries == 7
        monkeypatch.setenv("HOPPERDISSECT_SERVE_MEMO_MAX_ENTRIES",
                           "0")
        assert default_memo_entries() is None

    def test_eviction_does_not_change_answers(self):
        # evictions drop warm-start state only: a churning bounded
        # memo answers identically to an unbounded one
        bounded = QueryService(cache=None, memo_entries=1)
        unbounded = QueryService(cache=None, memo_entries=0)
        clusters = (1, 2, 4, 1, 2, 4)
        a = [bounded.answer(self._q(c)).to_line() for c in clusters]
        b = [unbounded.answer(self._q(c)).to_line() for c in clusters]
        assert a == b
        assert bounded.stats.as_dict()["serve.memo.evictions"] > 0


class TestCacheSizeGuard:
    def _fill(self, cache, n):
        import hashlib

        for i in range(n):
            key = hashlib.sha256(str(i).encode()).hexdigest()
            cache.put_blob("blobtest", key, {"i": i})

    def test_lru_bound_evicts_oldest(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_entries=3)
        self._fill(cache, 5)
        assert len(list(tmp_path.glob("*.pkl"))) == 3
        assert cache.stats.evictions == 2

    def test_reads_refresh_recency(self, tmp_path):
        import os

        cache = ResultCache(root=tmp_path, max_entries=2)
        cache.put_blob("blobtest", "a" * 40, 1)
        cache.put_blob("blobtest", "b" * 40, 2)
        # age "a", then touch it via a read; "b" becomes the LRU
        os.utime(cache.blob_path("blobtest", "a" * 40), (1, 1))
        assert cache.get_blob("blobtest", "a" * 40) == 1
        os.utime(cache.blob_path("blobtest", "b" * 40), (2, 2))
        cache.put_blob("blobtest", "c" * 40, 3)
        assert cache.get_blob("blobtest", "a" * 40) == 1
        assert cache.get_blob("blobtest", "b" * 40) is None

    def test_eviction_counter_fires(self, tmp_path):
        # the session sees the result_cache.* provenance counter only;
        # serve.* tallies stay in the service's private stats bank
        session = ObsSession()
        with session.activate():
            cache = ResultCache(root=tmp_path, max_entries=1)
            self._fill(cache, 3)
        bank = session.counters.as_dict()
        assert bank["result_cache.eviction"] == 2
        assert "serve.cache.evictions" not in bank

    def test_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOPPERDISSECT_CACHE_MAX_ENTRIES", "7")
        assert ResultCache(root=tmp_path).max_entries == 7
        monkeypatch.setenv("HOPPERDISSECT_CACHE_MAX_ENTRIES", "0")
        assert ResultCache(root=tmp_path).max_entries is None
        monkeypatch.delenv("HOPPERDISSECT_CACHE_MAX_ENTRIES")
        assert ResultCache(root=tmp_path).max_entries is None

    def test_bound_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            ResultCache(root=tmp_path, max_entries=0)

    def test_corrupt_blob_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        path = cache.put_blob("blobtest", "d" * 40, {"x": 1})
        path.write_bytes(b"garbage")
        assert cache.get_blob("blobtest", "d" * 40) is None

    def test_blob_keys_namespace_by_kind(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put_blob("kind-one", "e" * 40, 1)
        assert cache.get_blob("kind-two", "e" * 40) is None


class TestServeCli:
    def _write_batch(self, tmp_path):
        path = tmp_path / "batch.jsonl"
        path.write_text("\n".join(_batch_lines()) + "\n")
        return path

    def test_serve_round_trip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("HOPPERDISSECT_CACHE_DIR",
                           str(tmp_path / "cache"))
        batch = self._write_batch(tmp_path)
        out = tmp_path / "out.jsonl"
        stats = tmp_path / "stats.json"
        assert main(["serve", "-i", str(batch), "-o", str(out),
                     "--stats-json", str(stats)]) == 0
        answers = [json.loads(line)
                   for line in out.read_text().splitlines()]
        assert len(answers) == len(_batch_lines())
        by_id = {a.get("id"): a for a in answers if "id" in a}
        assert by_id["unsup"]["status"] == "unsupported"
        assert by_id["lin-H800-256"]["status"] == "ok"
        assert json.loads(stats.read_text())["schema"] == STATS_SCHEMA

    def test_serve_jobs_and_warm_are_byte_identical(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOPPERDISSECT_CACHE_DIR",
                           str(tmp_path / "cache"))
        batch = self._write_batch(tmp_path)
        outs = {}
        for tag, flags in (("serial", []),
                           ("jobs", ["--jobs", "3"]),
                           ("warm", [])):
            out = tmp_path / f"{tag}.jsonl"
            counters = tmp_path / f"{tag}.counters.json"
            metrics = tmp_path / f"{tag}.om.txt"
            assert main(["serve", "-i", str(batch), "-o", str(out),
                         "--counters-json", str(counters),
                         "--metrics", str(metrics), *flags]) == 0
            outs[tag] = (out.read_bytes(), counters.read_bytes(),
                         metrics.read_bytes())
        assert outs["serial"] == outs["jobs"]
        assert outs["serial"] == outs["warm"]

    def test_serve_metrics_include_serve_counters(
            self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("HOPPERDISSECT_CACHE_DIR",
                           str(tmp_path / "cache"))
        batch = self._write_batch(tmp_path)
        metrics = tmp_path / "om.txt"
        out = tmp_path / "out.jsonl"
        assert main(["serve", "-i", str(batch), "-o", str(out),
                     "--metrics", str(metrics)]) == 0
        text = metrics.read_text()
        assert "hopperdissect_serve_queries_total" in text
        assert "hopperdissect_serve_batch_size_bucket" in text
        assert 'experiment="serve:te.linear@H800"' in text

    def test_query_one_shot(self, capsys):
        assert main(["query", "mma", "-d", "A100", "--no-cache",
                     "-p", "ab=fp16", "-p", "cd=fp32",
                     "-p", "m=16", "-p", "n=8", "-p", "k=16"]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["status"] == "ok"
        assert obj["metrics"]["latency_clk"] > 0

    def test_query_json_form(self, capsys):
        assert main(["query", "--no-cache", "--json",
                     json.dumps({"kind": "dsm.bandwidth",
                                 "device": "V100",
                                 "params": {"cluster_size": 2}})]) == 0
        obj = json.loads(capsys.readouterr().out)
        assert obj["status"] == "unsupported"

    def test_query_unknown_device_suggests(self, capsys):
        rc = main(["query", "mma", "-d", "H80", "--no-cache",
                   "-p", "ab=fp16", "-p", "cd=fp32",
                   "-p", "m=16", "-p", "n=8", "-p", "k=16"])
        assert rc == 2
        assert "did you mean" in capsys.readouterr().err

    def test_query_unknown_experiment_suggests(self, capsys):
        rc = main(["query", "experiment", "--no-cache",
                   "-p", "name=table7_mma"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "did you mean" in out and "table07_mma" in out

    def test_query_bad_params_exit_2(self, capsys):
        assert main(["query", "te.linear", "-d", "H800",
                     "--no-cache", "--precision", "fp16",
                     "-p", "m=64"]) == 2
        assert "requires param" in capsys.readouterr().err
