"""Tests for mma/wgmma instruction descriptors and shape rules."""

from __future__ import annotations

import pytest

from repro.isa import (
    MatrixShape,
    MmaInstruction,
    OperandSource,
    WgmmaInstruction,
    accumulator_types,
    input_types,
    mma_shapes,
    valid_wgmma_n,
    wgmma_k,
)
from repro.isa.dtypes import DType


class TestDTypes:
    def test_bits(self):
        assert DType.FP16.bits == 16
        assert DType.TF32.bits == 32       # full-register storage
        assert DType.E4M3.bits == 8
        assert DType.INT4.bits == 4
        assert DType.BIN1.bits == 1

    def test_float_format_links(self):
        assert DType.FP16.float_format.name == "fp16"
        assert DType.E5M2.float_format.max_finite == 57344.0
        assert DType.INT8.float_format is None

    def test_accumulators(self):
        assert accumulator_types(DType.FP16) == (DType.FP16, DType.FP32)
        assert accumulator_types(DType.TF32) == (DType.FP32,)
        assert accumulator_types(DType.INT8) == (DType.INT32,)
        with pytest.raises(ValueError):
            accumulator_types(DType.INT32)

    def test_input_types_complete(self):
        assert DType.E4M3 in input_types()
        assert DType.BIN1 in input_types()

    def test_peak_keys(self):
        assert DType.E4M3.peak_key == "fp8"
        assert DType.E5M2.peak_key == "fp8"
        assert DType.BIN1.peak_key == "binary"

    def test_paper_labels(self):
        assert DType.E4M3.paper_label == "FP8"
        assert DType.BIN1.paper_label == "Binary"


class TestMatrixShape:
    def test_modifier(self):
        assert MatrixShape(16, 8, 16).modifier == "m16n8k16"

    def test_flops(self):
        s = MatrixShape(16, 8, 16)
        assert s.macs == 2048
        assert s.flops == 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            MatrixShape(0, 8, 16)

    def test_ordering(self):
        assert MatrixShape(16, 8, 8) < MatrixShape(16, 8, 16)


class TestMmaShapes:
    def test_fp16_shapes(self):
        assert [s.modifier for s in mma_shapes(DType.FP16)] == \
            ["m16n8k8", "m16n8k16"]

    def test_tf32_shapes(self):
        assert [s.modifier for s in mma_shapes(DType.TF32)] == \
            ["m16n8k4", "m16n8k8"]

    def test_int8_shapes(self):
        assert [s.modifier for s in mma_shapes(DType.INT8)] == \
            ["m16n8k16", "m16n8k32"]

    def test_binary_shapes(self):
        assert mma_shapes(DType.BIN1)[-1].modifier == "m16n8k256"

    def test_fp8_has_no_mma_shapes(self):
        with pytest.raises(ValueError):
            mma_shapes(DType.E4M3)


class TestMmaInstruction:
    def test_valid(self):
        i = MmaInstruction(DType.FP16, DType.FP32, MatrixShape(16, 8, 16))
        assert i.warps == 1
        assert i.threads == 32
        assert i.synchronous
        assert i.flops == 4096

    def test_opcode(self):
        i = MmaInstruction(DType.FP16, DType.FP32, MatrixShape(16, 8, 16))
        assert i.opcode.startswith("mma.sync.aligned.m16n8k16")
        assert ".f32.f16.f16.f32" in i.opcode

    def test_sparse_doubles_k(self):
        i = MmaInstruction(DType.FP16, DType.FP16,
                           MatrixShape(16, 8, 16), sparse=True)
        assert i.effective_shape.k == 32
        assert i.flops == 8192
        assert i.opcode.startswith("mma.sp.sync.aligned.m16n8k32")

    def test_illegal_accumulator(self):
        with pytest.raises(ValueError, match="accumulator"):
            MmaInstruction(DType.TF32, DType.FP16,
                           MatrixShape(16, 8, 8))

    def test_illegal_shape(self):
        with pytest.raises(ValueError, match="not a legal mma shape"):
            MmaInstruction(DType.FP16, DType.FP16,
                           MatrixShape(16, 8, 4))

    def test_sparse_binary_rejected(self):
        with pytest.raises(ValueError, match="mma.sp"):
            MmaInstruction(DType.BIN1, DType.INT32,
                           MatrixShape(16, 8, 256), sparse=True)

    def test_operand_bytes_dense(self):
        i = MmaInstruction(DType.FP16, DType.FP32, MatrixShape(16, 8, 16))
        ob = i.operand_bytes()
        assert ob["A"] == 16 * 16 * 2
        assert ob["B"] == 16 * 8 * 2
        assert ob["C"] == 16 * 8 * 4
        assert ob["meta"] == 0

    def test_operand_bytes_sparse_metadata(self):
        i = MmaInstruction(DType.FP16, DType.FP32,
                           MatrixShape(16, 8, 16), sparse=True)
        assert i.operand_bytes()["meta"] == 16 * 16 // 4


class TestWgmma:
    def test_wgmma_k_per_type(self):
        assert wgmma_k(DType.FP16) == 16
        assert wgmma_k(DType.TF32) == 8
        assert wgmma_k(DType.E4M3) == 32
        assert wgmma_k(DType.INT8) == 32
        assert wgmma_k(DType.BIN1) == 256

    def test_int4_wgmma_does_not_exist(self):
        with pytest.raises(ValueError, match="INT4"):
            wgmma_k(DType.INT4)

    def test_valid_n_range(self):
        ns = valid_wgmma_n()
        assert ns[0] == 8 and ns[-1] == 256
        assert all(n % 8 == 0 for n in ns)
        assert len(ns) == 32

    def test_basic_properties(self):
        w = WgmmaInstruction(DType.FP16, DType.FP32, 256)
        assert w.m == 64 and w.k == 16
        assert w.warps == 4 and w.threads == 128
        assert not w.synchronous
        assert w.flops == 2 * 64 * 256 * 16

    def test_opcode(self):
        w = WgmmaInstruction(DType.E4M3, DType.FP32, 128)
        assert w.opcode.startswith(
            "wgmma.mma_async.sync.aligned.m64n128k32")

    def test_bad_n(self):
        for n in (0, 4, 12, 260, -8):
            with pytest.raises(ValueError):
                WgmmaInstruction(DType.FP16, DType.FP32, n)

    def test_int4_rejected(self):
        with pytest.raises(ValueError):
            WgmmaInstruction(DType.INT4, DType.INT32, 64)

    def test_sparse_flops_double(self):
        d = WgmmaInstruction(DType.FP16, DType.FP32, 64)
        s = WgmmaInstruction(DType.FP16, DType.FP32, 64, sparse=True)
        assert s.flops == 2 * d.flops
        assert s.effective_shape.k == 32

    def test_shared_memory_bytes_dense(self):
        ss = WgmmaInstruction(DType.FP16, DType.FP32, 256,
                              a_source=OperandSource.SHARED)
        rs = WgmmaInstruction(DType.FP16, DType.FP32, 256,
                              a_source=OperandSource.REGISTER)
        # SS: A (64×16×2) + B (16×256×2); RS: B only
        assert ss.shared_memory_bytes() == 2048 + 8192
        assert rs.shared_memory_bytes() == 8192

    def test_shared_memory_bytes_sparse_ss_unpruned(self):
        ss = WgmmaInstruction(DType.FP16, DType.FP32, 256, sparse=True,
                              a_source=OperandSource.SHARED)
        rs = WgmmaInstruction(DType.FP16, DType.FP32, 256, sparse=True,
                              a_source=OperandSource.REGISTER)
        # sparse SS streams the UNPRUNED A (64 × 32 × 2B) + B at k=32
        assert ss.shared_memory_bytes() == 64 * 32 * 2 + 32 * 256 * 2
        assert rs.shared_memory_bytes() == 32 * 256 * 2

    def test_register_bytes(self):
        rs = WgmmaInstruction(DType.FP16, DType.FP16, 64,
                              a_source=OperandSource.REGISTER)
        ss = WgmmaInstruction(DType.FP16, DType.FP16, 64,
                              a_source=OperandSource.SHARED)
        assert rs.register_bytes() > ss.register_bytes()
