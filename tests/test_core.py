"""Tests for the experiment harness: tables, checks, registry, CLI."""

from __future__ import annotations

import pytest

from repro.core import (
    Check,
    Table,
    approx,
    get_experiment,
    list_experiments,
    ordered,
    ratio_between,
    run_experiment,
)
from repro.core.registry import Experiment, register
from repro.core.report import experiments_markdown, summary_line


class TestTable:
    def test_add_and_access(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_dict_row({"a": 3, "b": 4.0, "ignored": 9})
        assert t.column("a") == [1, 3]
        assert t.cell(1, "b") == 4.0
        assert len(t) == 2

    def test_row_width_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_unknown_column(self):
        t = Table("demo", ["a"])
        with pytest.raises(KeyError):
            t.column("z")

    def test_render_contains_everything(self):
        t = Table("My Title", ["col", "val"])
        t.add_row("x", 12345.6)
        out = t.render()
        assert "My Title" in out
        assert "col" in out and "x" in out
        assert "12346" in out  # large floats rendered as integers

    def test_markdown(self):
        t = Table("t", ["a"])
        t.add_row(1)
        md = t.to_markdown()
        assert md.startswith("| a |")
        assert "| 1 |" in md


class TestChecks:
    def test_approx(self):
        assert approx("x", 100.0, 100.0).passed
        assert approx("x", 120.0, 100.0, rel_tol=0.25).passed
        assert not approx("x", 130.0, 100.0, rel_tol=0.25).passed
        assert approx("zero", 0.0, 0.0).passed

    def test_ordered(self):
        assert ordered("up", [1, 2, 3], strict=True).passed
        assert not ordered("up", [1, 1, 3], strict=True).passed
        assert ordered("up", [1, 1, 3]).passed
        assert ordered("down", [3, 2, 1], descending=True).passed

    def test_ratio_between(self):
        assert ratio_between("r", 2.0, 1.0, 1.9, 2.1).passed
        assert not ratio_between("r", 3.0, 1.0, 1.9, 2.1).passed
        assert not ratio_between("r", 1.0, 0.0, 0, 10).passed

    def test_check_render(self):
        c = Check("finding", True, detail="d")
        assert "PASS" in c.render() and "finding" in c.render()
        assert bool(c)
        assert "FAIL" in Check("f", False).render()


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        names = list_experiments()
        for n in ("table03_devices", "table04_mem_latency",
                  "table05_mem_throughput", "table06_sass",
                  "table07_mma", "table08_wgmma_dense",
                  "table09_wgmma_sparse", "table10_wgmma_nsweep",
                  "table11_energy", "table12_llm",
                  "table13_async_h800", "table14_async_a100",
                  "fig03_te_breakdown", "fig04_te_linear",
                  "fig05_te_layer", "fig06_dpx_latency",
                  "fig07_dpx_throughput", "fig08_dsm_rbc",
                  "fig09_dsm_histogram"):
            assert n in names, n

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            register("table06_sass", "x", "y")(lambda: None)

    def test_experiment_metadata(self):
        exp = get_experiment("table07_mma")
        assert exp.paper_ref == "Table VII"
        assert isinstance(exp, Experiment)


@pytest.mark.parametrize("name", sorted(
    __import__("repro.core", fromlist=["list_experiments"])
    .list_experiments()
))
def test_every_experiment_passes_its_checks(name):
    """The repository's headline guarantee: every regenerated artefact
    verifies every one of the paper's qualitative findings."""
    res = run_experiment(name)
    assert len(res.table) > 0
    failed = [c for c in res.checks if not c.passed]
    assert not failed, "\n".join(c.render() for c in failed)
    assert res.passed
    # render paths exercised
    rendered = res.render()
    assert res.experiment.paper_ref
    assert res.table.title in rendered


class TestReport:
    def test_markdown_generation(self):
        # run a small subset through the report path
        from repro.core.registry import run_experiment as run
        results = {n: run(n) for n in ("table03_devices",
                                       "table06_sass")}
        md = experiments_markdown(results)
        assert "## Table III — `table03_devices`" in md
        assert "- [x]" in md
        assert summary_line(results).endswith("2 experiments")
