"""Tests for the power/energy model (Table XI)."""

from __future__ import annotations

import pytest

from repro.arch import get_device
from repro.isa import MatrixShape, MmaInstruction
from repro.isa.dtypes import DType
from repro.power import PowerModel
from repro.tensorcore import TensorCoreTimingModel

#: Table XI reference: (device, ab, cd, sparse) -> (watts, tflops/W)
PAPER_TABLE11 = {
    ("A100", DType.FP16, DType.FP16, False): (173.4, 1.79),
    ("A100", DType.FP16, DType.FP16, True): (198.8, 3.13),
    ("A100", DType.TF32, DType.FP32, False): (214.7, 0.71),
    ("A100", DType.INT8, DType.INT32, True): (193.9, 6.24),
    ("H800", DType.FP16, DType.FP16, False): (188.6, 2.62),
    ("H800", DType.FP16, DType.FP32, True): (194.9, 3.70),
    ("H800", DType.INT8, DType.INT32, False): (165.3, 5.92),
    ("RTX4090", DType.FP16, DType.FP16, False): (189.1, 1.89),
    ("RTX4090", DType.TF32, DType.FP32, True): (187.9, 0.95),
    ("RTX4090", DType.INT8, DType.INT32, True): (219.8, 6.47),
}

_SHAPE = {DType.FP16: (16, 8, 16), DType.TF32: (16, 8, 8),
          DType.INT8: (16, 8, 32)}


def _report(dev_name, ab, cd, sparse):
    dev = get_device(dev_name)
    tm = TensorCoreTimingModel(dev)
    instr = MmaInstruction(ab, cd, MatrixShape(*_SHAPE[ab]),
                           sparse=sparse)
    t = tm.mma(instr)
    return PowerModel(dev).report(
        op="mma", ab=ab, cd=cd, tflops=t.throughput_tflops("rand"),
        sparse=sparse,
    )


class TestTable11:
    @pytest.mark.parametrize("key", sorted(PAPER_TABLE11, key=str))
    def test_power_and_efficiency(self, key):
        dev, ab, cd, sparse = key
        watts, eff = PAPER_TABLE11[key]
        rep = _report(dev, ab, cd, sparse)
        assert rep.power_watts == pytest.approx(watts, rel=0.08)
        assert rep.efficiency_tflops_per_watt == pytest.approx(
            eff, rel=0.08)

    def test_h800_dense_efficiency_lead(self):
        pairs = [(DType.FP16, DType.FP16), (DType.FP16, DType.FP32),
                 (DType.TF32, DType.FP32), (DType.INT8, DType.INT32)]
        r_a, r_r = [], []
        for ab, cd in pairs:
            h = _report("H800", ab, cd, False).efficiency_tflops_per_watt
            a = _report("A100", ab, cd, False).efficiency_tflops_per_watt
            r = _report("RTX4090", ab, cd,
                        False).efficiency_tflops_per_watt
            r_a.append(h / a)
            r_r.append(h / r)
        assert sum(r_a) / 4 == pytest.approx(1.60, rel=0.12)
        assert sum(r_r) / 4 == pytest.approx(1.69, rel=0.12)


class TestThrottle:
    def test_mma_never_throttles(self, any_device):
        pm = PowerModel(any_device)
        s = pm.throttle_scale(op="mma", ab=DType.FP16, cd=DType.FP16,
                              tflops=500.0)
        assert s == 1.0

    def test_wgmma_rand_throttles_on_h800(self, h800):
        pm = PowerModel(h800)
        s = pm.throttle_scale(
            op="wgmma", ab=DType.FP16, cd=DType.FP32, tflops=728.5,
            operand_bytes_per_s=14.3e12,
        )
        assert 0.85 < s < 0.95

    def test_zero_data_cheaper(self, h800):
        pm = PowerModel(h800)
        kw = dict(op="wgmma", ab=DType.FP16, cd=DType.FP32,
                  tflops=700.0)
        assert pm.dynamic_watts(data="zero", **kw) \
            < pm.dynamic_watts(data="rand", **kw)

    def test_throttled_power_respects_cap(self, h800):
        pm = PowerModel(h800)
        rep = pm.report(op="wgmma", ab=DType.FP16, cd=DType.FP32,
                        tflops=728.5, operand_bytes_per_s=14.3e12)
        assert rep.power_watts <= h800.power_cap_watts * 1.001
        assert rep.throughput_tflops < 728.5

    def test_negative_rate_rejected(self, h800):
        with pytest.raises(ValueError):
            PowerModel(h800).dynamic_watts(
                op="mma", ab=DType.FP16, cd=DType.FP16, tflops=-1.0)

    def test_unknown_pairing_uses_default_energy(self, h800):
        pm = PowerModel(h800)
        w = pm.dynamic_watts(op="mma", ab=DType.BIN1, cd=DType.INT32,
                             tflops=100.0)
        assert w > 0

    def test_sparse_physical_mac_discount(self, h800):
        pm = PowerModel(h800)
        dense = pm.dynamic_watts(op="wgmma", ab=DType.FP16,
                                 cd=DType.FP32, tflops=700.0)
        sparse = pm.dynamic_watts(op="wgmma", ab=DType.FP16,
                                  cd=DType.FP32, tflops=700.0,
                                  sparse=True)
        # same useful FLOPs, half the physical MACs
        assert sparse == pytest.approx(dense / 2)
