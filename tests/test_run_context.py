"""RunContext semantics: normalization, selection, identity, shims."""

from __future__ import annotations

import pickle

import pytest

from repro.core import (
    DEFAULT_CONTEXT,
    Check,
    DeviceNotInContext,
    RunContext,
    Table,
    get_experiment,
    list_experiments,
    run_experiment,
    supported_experiments,
)
from repro.core.registry import Experiment, ExperimentResult, register


class TestConstruction:
    def test_default_is_the_paper_testbed(self):
        assert DEFAULT_CONTEXT.devices == ("RTX4090", "A100", "H800")
        assert DEFAULT_CONTEXT.seed == 0
        assert DEFAULT_CONTEXT.fidelity == "fast"
        assert DEFAULT_CONTEXT.is_default

    def test_devices_are_uppercased_and_deduped(self):
        ctx = RunContext(devices=("h800", "H800", "a100"))
        assert ctx.devices == ("H800", "A100")

    def test_unregistered_device_rejected(self):
        with pytest.raises(KeyError):
            RunContext(devices=("H100",))

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            RunContext(devices=())

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            RunContext(fidelity="exact")

    def test_non_default_contexts_are_not_default(self):
        assert not RunContext(devices=("A100",)).is_default
        assert not RunContext(seed=7).is_default
        assert not RunContext(fidelity="full").is_default

    def test_hook_excluded_from_identity(self):
        with_hook = RunContext(hook=lambda n, s: None)
        assert with_hook == DEFAULT_CONTEXT
        assert with_hook.is_default
        assert with_hook.without_hook().hook is None


class TestSelection:
    def test_device_order_prefers_requested_order(self):
        ctx = RunContext(devices=("RTX4090", "A100", "H800"))
        assert ctx.device_order("A100", "RTX4090", "H800") == \
            ("A100", "RTX4090", "H800")

    def test_device_order_appends_extra_context_devices(self):
        ctx = RunContext(devices=("H800", "A100"))
        assert ctx.device_order("A100") == ("A100", "H800")

    def test_select_is_the_intersection_in_request_order(self):
        ctx = RunContext(devices=("H800", "A100"))
        assert ctx.select("RTX4090", "H800") == ("H800",)
        assert ctx.select("A100", "H800") == ("A100", "H800")

    def test_pin_returns_name_or_raises(self):
        ctx = RunContext(devices=("A100",))
        assert ctx.pin("a100") == "A100"
        with pytest.raises(DeviceNotInContext):
            ctx.pin("H800")

    def test_has(self):
        ctx = RunContext(devices=("A100", "H800"))
        assert ctx.has("A100") and ctx.has("h800", "a100")
        assert not ctx.has("RTX4090")


class TestIdentity:
    def test_token_covers_every_knob(self):
        a = RunContext(devices=("A100",), seed=3, fidelity="full")
        assert a.token() == "devices=A100;seed=3;fidelity=full"
        assert a.token() != DEFAULT_CONTEXT.token()

    def test_payload_roundtrip(self):
        a = RunContext(devices=("H800", "A100"), seed=5,
                       hook=lambda n, s: None)
        b = RunContext.from_payload(a.to_payload())
        assert b == a                 # hook excluded from equality
        assert b.hook is None
        pickle.dumps(b)               # payload-built contexts pickle

    def test_rng_is_seed_deterministic(self):
        a = RunContext(seed=9).rng().integers(0, 100, 8)
        b = RunContext(seed=9).rng().integers(0, 100, 8)
        assert list(a) == list(b)

    def test_emit_feeds_the_hook(self):
        seen = []
        ctx = RunContext(hook=lambda n, s: seen.append((n, s)))
        ctx.emit("x", 0.5)
        assert seen == [("x", 0.5)]


class TestRegistryIntegration:
    def test_pinned_experiments_are_filtered(self):
        ctx = RunContext(devices=("A100",))
        supported = supported_experiments(ctx)
        assert "table03_devices" in supported      # sweeps anything
        assert "fig08_dsm_rbc" not in supported    # pinned H800
        assert "table14_async_a100" in supported   # pinned A100

    def test_running_unsupported_experiment_raises(self):
        with pytest.raises(DeviceNotInContext):
            run_experiment("fig08_dsm_rbc",
                           RunContext(devices=("A100",)))

    def test_result_records_context(self):
        ctx = RunContext(devices=("A100",))
        res = run_experiment("table03_devices", ctx)
        assert res.context == ctx
        assert f"context: {ctx.token()}" in res.render()

    def test_default_context_render_has_no_token(self):
        res = run_experiment("table03_devices")
        assert "context:" not in res.render()

    def test_run_emits_timing_to_hook(self):
        seen = []
        ctx = RunContext(hook=lambda n, s: seen.append((n, s)))
        run_experiment("table03_devices", ctx)
        assert len(seen) == 1
        assert seen[0][0] == "table03_devices" and seen[0][1] >= 0

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(KeyError,
                           match="table04_mem_latency"):
            get_experiment("table04_mem_latencies")

    def test_every_builder_takes_the_context(self):
        # the refactor is complete: no registered builder is legacy
        from repro.core.registry import _accepts_context
        for name in list_experiments():
            assert _accepts_context(get_experiment(name).builder), name

    def test_zero_arg_builder_registration_raises(self):
        # the shim warned since PR 2; it's gone now
        from repro.core import registry as regmod
        t = Table("legacy", ["a"])
        t.add_row(1)
        try:
            with pytest.raises(TypeError, match="zero-argument"):
                register("zz_legacy_probe", "none",
                         "legacy shim coverage")(lambda: (t, []))
            assert "zz_legacy_probe" not in regmod._REGISTRY
        finally:
            regmod._REGISTRY.pop("zz_legacy_probe", None)

    def test_context_builder_still_registers_fine(self):
        from repro.core import registry as regmod
        t = Table("direct", ["a"])
        t.add_row(1)
        try:
            register("zz_ctx_probe", "none", "context builder")(
                lambda ctx: (t, [Check("ok", True)]))
            res = run_experiment(
                "zz_ctx_probe", RunContext(devices=("A100",)))
            assert isinstance(res, ExperimentResult) and res.passed
            assert res.table is t
        finally:
            regmod._REGISTRY.pop("zz_ctx_probe", None)

    def test_direct_experiment_passes_context_to_builder(self):
        # no shim on the direct path either: the builder gets the ctx
        seen = []
        t = Table("direct", ["a"])
        t.add_row(1)

        def builder(ctx):
            seen.append(ctx)
            return t, [Check("ok", True)]

        exp = Experiment(name="d", paper_ref="-", description="-",
                         builder=builder)
        ctx = RunContext(devices=("H800",))
        res = exp.run(ctx)
        assert isinstance(res, ExperimentResult) and res.passed
        assert seen == [ctx]
