"""Tests for the counter bank (repro.obs.counters)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.counters import (
    NULL_COUNTERS,
    CounterSet,
    NullCounterSet,
    bucket_bound,
    bucket_label,
)


class TestCounterSet:
    def test_add_and_get(self):
        c = CounterSet()
        c.add("cache.l1.hits")
        c.add("cache.l1.hits", 41)
        assert c.get("cache.l1.hits") == 42
        assert c.get("missing") == 0
        assert c.get("missing", -1) == -1

    def test_integers_only(self):
        c = CounterSet()
        c.add("x", 2.9)            # floats truncate, never accumulate
        assert c.get("x") == 2
        assert isinstance(c.get("x"), int)

    def test_total_prefix(self):
        c = CounterSet()
        c.add("cache.l1.hits", 3)
        c.add("cache.l1.tag_misses", 2)
        c.add("cache.l2.hits", 7)
        assert c.total("cache.l1.") == 5
        assert c.total("cache.") == 12

    def test_items_sorted(self):
        c = CounterSet()
        c.add("zz")
        c.add("aa")
        assert [k for k, _ in c.items()] == ["aa", "zz"]

    def test_dump_canonical(self):
        a = CounterSet()
        a.add("b", 1)
        a.add("a", 2)
        b = CounterSet()
        b.add("a", 2)
        b.add("b", 1)
        assert a.dump() == b.dump()
        assert json.loads(a.dump()) == {"a": 2, "b": 1}

    def test_merge_order_invariant(self):
        deltas = [{"x": 1, "y": 5}, {"x": 3}, {"y": 2, "z": 9}]
        fwd = CounterSet()
        for d in deltas:
            fwd.merge(d)
        rev = CounterSet()
        for d in reversed(deltas):
            rev.merge(d)
        assert fwd.dump() == rev.dump()

    def test_merge_counterset(self):
        a = CounterSet()
        a.add("x", 2)
        b = CounterSet()
        b.add("x", 3)
        a.merge(b)
        assert a.get("x") == 5

    def test_bool_len_clear(self):
        c = CounterSet()
        assert not c and len(c) == 0
        c.add("x")
        assert c and len(c) == 1
        c.clear()
        assert not c


class TestHistogramBuckets:
    @pytest.mark.parametrize("value,bound", [
        (0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8),
        (4.5, 8), (6.5, 8), (128, 128), (129, 256), (1000, 1024),
    ])
    def test_bucket_bound(self, value, bound):
        assert bucket_bound(value) == bound

    def test_bucket_label_zero_padded(self):
        assert bucket_label("lat", 300) == "lat.le00000512"

    def test_scalar_matches_vectorized(self):
        """The doubling-loop scalar path and the log2 vectorized path
        must land every value in the same bucket."""
        values = [0.5, 1, 2, 3, 4, 4.5, 5, 31, 32, 33, 128, 129,
                  273.25, 478.0, 1024, 1025]
        scalar = CounterSet()
        for v in values:
            scalar.observe("lat", v)
        vec = CounterSet()
        vec.observe_many("lat", np.array(values))
        assert scalar.dump() == vec.dump()

    def test_observe_many_empty(self):
        c = CounterSet()
        c.observe_many("lat", np.array([]))
        assert not c


class TestNullCounterSet:
    def test_all_mutators_noop(self):
        n = NullCounterSet()
        n.add("x", 5)
        n.observe("y", 3.0)
        n.observe_many("z", np.array([1.0, 2.0]))
        n.merge({"w": 1})
        assert not n and n.dump() == "{}"

    def test_enabled_flags(self):
        assert CounterSet().enabled is True
        assert NULL_COUNTERS.enabled is False

    def test_shared_singleton_is_null(self):
        assert isinstance(NULL_COUNTERS, NullCounterSet)
