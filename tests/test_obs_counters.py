"""Tests for the counter bank (repro.obs.counters)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.counters import (
    NULL_COUNTERS,
    CounterSet,
    NullCounterSet,
    bucket_bound,
    bucket_label,
    counter_sort_key,
    split_bucket,
)


class TestCounterSet:
    def test_add_and_get(self):
        c = CounterSet()
        c.add("cache.l1.hits")
        c.add("cache.l1.hits", 41)
        assert c.get("cache.l1.hits") == 42
        assert c.get("missing") == 0
        assert c.get("missing", -1) == -1

    def test_integers_only(self):
        c = CounterSet()
        c.add("x", 2.9)            # floats truncate, never accumulate
        assert c.get("x") == 2
        assert isinstance(c.get("x"), int)

    def test_total_prefix(self):
        c = CounterSet()
        c.add("cache.l1.hits", 3)
        c.add("cache.l1.tag_misses", 2)
        c.add("cache.l2.hits", 7)
        assert c.total("cache.l1.") == 5
        assert c.total("cache.") == 12

    def test_items_sorted(self):
        c = CounterSet()
        c.add("zz")
        c.add("aa")
        assert [k for k, _ in c.items()] == ["aa", "zz"]

    def test_dump_canonical(self):
        a = CounterSet()
        a.add("b", 1)
        a.add("a", 2)
        b = CounterSet()
        b.add("a", 2)
        b.add("b", 1)
        assert a.dump() == b.dump()
        assert json.loads(a.dump()) == {"a": 2, "b": 1}

    def test_merge_order_invariant(self):
        deltas = [{"x": 1, "y": 5}, {"x": 3}, {"y": 2, "z": 9}]
        fwd = CounterSet()
        for d in deltas:
            fwd.merge(d)
        rev = CounterSet()
        for d in reversed(deltas):
            rev.merge(d)
        assert fwd.dump() == rev.dump()

    def test_merge_counterset(self):
        a = CounterSet()
        a.add("x", 2)
        b = CounterSet()
        b.add("x", 3)
        a.merge(b)
        assert a.get("x") == 5

    def test_bool_len_clear(self):
        c = CounterSet()
        assert not c and len(c) == 0
        c.add("x")
        assert c and len(c) == 1
        c.clear()
        assert not c


class TestHistogramBuckets:
    @pytest.mark.parametrize("value,bound", [
        (0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8),
        (4.5, 8), (6.5, 8), (128, 128), (129, 256), (1000, 1024),
    ])
    def test_bucket_bound(self, value, bound):
        assert bucket_bound(value) == bound

    def test_bucket_label_zero_padded(self):
        assert bucket_label("lat", 300) == "lat.le00000512"

    def test_scalar_matches_vectorized(self):
        """The doubling-loop scalar path and the log2 vectorized path
        must land every value in the same bucket."""
        values = [0.5, 1, 2, 3, 4, 4.5, 5, 31, 32, 33, 128, 129,
                  273.25, 478.0, 1024, 1025]
        scalar = CounterSet()
        for v in values:
            scalar.observe("lat", v)
        vec = CounterSet()
        vec.observe_many("lat", np.array(values))
        assert scalar.dump() == vec.dump()

    def test_observe_many_empty(self):
        c = CounterSet()
        c.observe_many("lat", np.array([]))
        assert not c


class TestBucketDumpOrdering:
    """Dumps must list histogram buckets in *numeric* bound order.

    Zero-padded labels only sort numerically up to eight digits; a
    chase that spends 2^27+ cycles in a bucket used to land after the
    2^30 bucket in every dump.  This pins the numeric ordering.
    """

    def test_split_bucket(self):
        assert split_bucket("mem.latency.l2.le00000512") \
            == ("mem.latency.l2", 512)
        assert split_bucket("mem.latency.l2.le134217728") \
            == ("mem.latency.l2", 134217728)
        assert split_bucket("mem.loads") == ("mem.loads", None)
        assert split_bucket("dsm.hops") == ("dsm.hops", None)

    def test_deep_tail_buckets_sort_numerically(self):
        c = CounterSet()
        c.observe("lat", 2 ** 30)      # lat.le1073741824
        c.observe("lat", 2 ** 27)      # lat.le134217728
        c.observe("lat", 300)          # lat.le00000512
        names = [k for k, _ in c.items()]
        assert names == ["lat.le00000512", "lat.le134217728",
                         "lat.le1073741824"]
        # the lexicographic order this replaces is provably wrong here
        assert names != sorted(names)

    def test_dump_preserves_numeric_order(self):
        c = CounterSet()
        c.add("lat.le1073741824", 1)
        c.add("lat.le00000256", 2)
        c.add("lat.le134217728", 3)
        assert list(json.loads(c.dump())) == [
            "lat.le00000256", "lat.le134217728", "lat.le1073741824"]

    def test_plain_names_keep_string_order(self):
        c = CounterSet()
        for name in ("zz", "aa", "mm.le", "mm.lex"):
            c.add(name)
        assert [k for k, _ in c.items()] == ["aa", "mm.le", "mm.lex",
                                             "zz"]

    def test_sort_key_matches_lexical_below_1e8(self):
        names = ["a.le00000001", "a.le00000512", "a.le00099999",
                 "a", "a.lex", "b", "mem.latency.l2.le00000064"]
        assert sorted(names) == sorted(names, key=counter_sort_key)

    def test_renderer_uses_numeric_order(self):
        from repro.obs import ObsSession

        session = ObsSession()
        session.counters.observe("lat", 2 ** 30)
        session.counters.observe("lat", 2 ** 27)
        rendered = session.render_counters()
        assert rendered.index("lat.le134217728") \
            < rendered.index("lat.le1073741824")


class TestNullCounterSet:
    def test_all_mutators_noop(self):
        n = NullCounterSet()
        n.add("x", 5)
        n.observe("y", 3.0)
        n.observe_many("z", np.array([1.0, 2.0]))
        n.merge({"w": 1})
        assert not n and n.dump() == "{}"

    def test_enabled_flags(self):
        assert CounterSet().enabled is True
        assert NULL_COUNTERS.enabled is False

    def test_shared_singleton_is_null(self):
        assert isinstance(NULL_COUNTERS, NullCounterSet)
