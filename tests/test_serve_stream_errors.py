"""In-stream error handling, exhaustively across every query kind.

The serve contract: **one bad line never aborts a batch**.  Malformed
JSON, unknown devices, out-of-domain params — each is answered with a
``status="error"`` prediction *in position*, the client tag echoed,
and every well-formed neighbour in the stream still gets its real
answer.  This suite drives a bad line of every flavour through every
kind, always sandwiched between good queries.
"""

from __future__ import annotations

import json

import pytest

from repro.serve import QueryService
from repro.serve.schema import KINDS

#: a known-good query per kind (cheap, supported on its device)
_GOOD = {
    "te.linear": {"kind": "te.linear", "device": "H800",
                  "precision": "fp16",
                  "params": {"m": 64, "n": 64, "k": 64}},
    "llm.generate": {"kind": "llm.generate", "device": "H800",
                     "precision": "fp16",
                     "params": {"model": "llama-3B", "batch": 1}},
    "mma": {"kind": "mma", "device": "A100",
            "params": {"ab": "fp16", "cd": "fp32",
                       "m": 16, "n": 8, "k": 16}},
    "wgmma": {"kind": "wgmma", "device": "H800",
              "params": {"ab": "fp16", "cd": "fp32", "n": 64}},
    "memory.latency": {"kind": "memory.latency", "device": "A100",
                       "params": {"footprint_kib": 16}},
    "dsm.bandwidth": {"kind": "dsm.bandwidth", "device": "H800",
                      "params": {"cluster_size": 2}},
    "experiment": {"kind": "experiment",
                   "params": {"name": "no_such_experiment"}},
}

#: a bad-params variant per kind (schema-level rejection)
_BAD_PARAMS = {
    "te.linear": {"kind": "te.linear", "device": "H800",
                  "precision": "fp16",
                  "params": {"m": 0, "n": 64, "k": 64}},
    "llm.generate": {"kind": "llm.generate", "device": "H800",
                     "precision": "fp16",
                     "params": {"model": "llama-3B", "batch": -2}},
    "mma": {"kind": "mma", "device": "A100",
            "params": {"ab": "fp16", "cd": "fp32",
                       "m": 16, "n": 8, "k": 16, "sparse": "yes"}},
    "wgmma": {"kind": "wgmma", "device": "H800",
              "params": {"ab": "fp16", "cd": "fp32", "n": 64,
                         "a_source": "tt"}},
    "memory.latency": {"kind": "memory.latency", "device": "A100",
                       "params": {"footprint_kib": 16,
                                  "stride_bytes": 1}},
    "dsm.bandwidth": {"kind": "dsm.bandwidth", "device": "H800",
                      "params": {"cluster_size": 999}},
    "experiment": {"kind": "experiment",
                   "params": {"name": "table07_mma",
                              "fidelity": "ultra"}},
}


def _lines(middle: str) -> list:
    """The bad line under test, sandwiched mid-batch."""
    return [
        json.dumps({**_GOOD["mma"], "id": "head"}),
        middle,
        json.dumps({**_GOOD["wgmma"], "id": "tail"}),
    ]


def _answer(lines):
    predictions = QueryService(cache=None).answer_lines(lines)
    assert len(predictions) == len(lines)
    head, bad, tail = predictions
    # the neighbours always get their real answers
    assert head.qid == "head" and head.status == "ok"
    assert tail.qid == "tail" and tail.status == "ok"
    return bad


@pytest.mark.parametrize("kind", KINDS)
def test_bad_params_answered_in_stream(kind):
    bad = _answer(_lines(json.dumps(
        {**_BAD_PARAMS[kind], "id": "bad"})))
    assert bad.status == "error"
    assert bad.qid == "bad"
    assert bad.reason


@pytest.mark.parametrize("kind",
                         [k for k in KINDS if k != "experiment"])
def test_unknown_device_answered_in_stream(kind):
    payload = {**_GOOD[kind], "device": "H801", "id": "bad"}
    bad = _answer(_lines(json.dumps(payload)))
    assert bad.status == "error"
    assert bad.qid == "bad"
    assert "did you mean" in bad.reason


@pytest.mark.parametrize("kind", KINDS)
def test_unknown_param_answered_in_stream(kind):
    payload = dict(_GOOD[kind])
    payload["params"] = {**payload["params"], "warp": 1}
    bad = _answer(_lines(json.dumps({**payload, "id": "bad"})))
    assert bad.status == "error"
    assert bad.qid == "bad"
    assert "warp" in bad.reason


def test_malformed_json_mid_batch():
    bad = _answer(_lines("{this is not json"))
    assert bad.status == "error"
    assert "bad JSON" in bad.reason


def test_unknown_experiment_name_stays_in_stream():
    """Family queries route through the runner fallback — an unknown
    name is still a per-line error, not an exception."""
    bad = _answer(_lines(json.dumps(
        {**_GOOD["experiment"], "id": "bad"})))
    assert bad.status == "error"
    assert bad.qid == "bad"
    assert "no_such_experiment" in bad.reason


def test_every_kind_has_fixtures():
    assert set(_GOOD) == set(KINDS)
    assert set(_BAD_PARAMS) == set(KINDS)


def test_all_kinds_of_bad_in_one_batch():
    """Seven bad lines of seven flavours in one stream: each is
    answered in position, the batch never aborts."""
    lines = [json.dumps({**_GOOD["mma"], "id": "g0"})]
    lines += [json.dumps({**_BAD_PARAMS[k], "id": f"bad-{k}"})
              for k in KINDS]
    lines.append(json.dumps({**_GOOD["te.linear"], "id": "g1"}))
    predictions = QueryService(cache=None).answer_lines(lines)
    assert len(predictions) == len(lines)
    assert predictions[0].status == "ok"
    assert predictions[-1].status == "ok"
    for p, kind in zip(predictions[1:-1], KINDS):
        assert p.status == "error", kind
        assert p.qid == f"bad-{kind}"
