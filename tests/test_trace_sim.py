"""Tests for the trace-driven SM simulator.

Validation strategy: closed-form traces first (the simulator must
reproduce arithmetic we can do by hand), then consistency with the
analytical models it shares calibration with.
"""

from __future__ import annotations

import pytest

from repro.arch import get_device
from repro.isa import MatrixShape, MmaInstruction
from repro.isa.dtypes import DType
from repro.isa.lowering import FunctionalUnit
from repro.tensorcore.timing import MmaTiming
from repro.trace import SmSimulator, TraceBuilder, TraceInstr, \
    WarpTrace


class TestClosedForms:
    def test_dependent_chain_is_n_times_latency(self):
        """The latency microbenchmark: serial chain → n·L cycles."""
        sim = SmSimulator()
        n, lat = 100, 4.5
        res = sim.run([TraceBuilder.dependent_chain(n, latency=lat)])
        assert res.cycles == pytest.approx(n * lat, abs=lat)
        assert res.instructions == n

    def test_independent_stream_is_ii_bound(self):
        """The throughput microbenchmark: with enough ILP the pipe
        issues every II cycles."""
        sim = SmSimulator()
        n = 200
        res = sim.run([TraceBuilder.independent_stream(
            n, latency=20.0, ii=2.0, regs=16)])
        # fill (one latency) + (n-1)·II
        assert res.cycles == pytest.approx(20 + (n - 1) * 2.0,
                                           rel=0.05)

    def test_ilp_below_latency_limits_ipc(self):
        """ILP=2 with latency 20, II 1 → IPC = 2/20 (Little's law)."""
        sim = SmSimulator()
        n = 200
        res = sim.run([TraceBuilder.independent_stream(
            n, latency=20.0, ii=1.0, regs=2)])
        assert res.ipc == pytest.approx(2.0 / 20.0, rel=0.05)

    def test_four_warps_four_pipes(self):
        """Dependent chains on separate schedulers don't interfere."""
        sim = SmSimulator(num_schedulers=4)
        traces = [TraceBuilder.dependent_chain(50, latency=10.0)
                  for _ in range(4)]
        res = sim.run(traces)
        assert res.cycles == pytest.approx(500, abs=10)

    def test_two_warps_one_scheduler_share_pipe(self):
        """Two warps on one scheduler with II-bound streams halve."""
        sim = SmSimulator(num_schedulers=1)
        one = sim.run([TraceBuilder.independent_stream(
            100, latency=8.0, ii=2.0)]).cycles
        two = sim.run([TraceBuilder.independent_stream(
            100, latency=8.0, ii=2.0) for _ in range(2)]).cycles
        assert two == pytest.approx(2 * one, rel=0.05)

    def test_two_warps_hide_each_others_latency(self):
        """Two dependent chains interleave on one scheduler: the pipe
        serves one while the other waits."""
        sim = SmSimulator(num_schedulers=1)
        one = sim.run([TraceBuilder.dependent_chain(
            100, latency=10.0, ii=1.0)]).cycles
        two = sim.run([TraceBuilder.dependent_chain(
            100, latency=10.0, ii=1.0) for _ in range(2)]).cycles
        # both finish in (approximately) the same wall time as one
        assert two < 1.2 * one

    def test_shared_lsu_serializes_across_schedulers(self):
        sim_shared = SmSimulator(num_schedulers=4, shared_lsu=True)
        sim_split = SmSimulator(num_schedulers=4, shared_lsu=False)
        traces = [TraceBuilder.independent_stream(
            50, latency=8.0, ii=4.0,
            unit=FunctionalUnit.LSU, regs=16) for _ in range(4)]
        assert sim_shared.run(traces).cycles \
            > 2 * sim_split.run(traces).cycles

    def test_load_compute_exposes_latency(self):
        sim = SmSimulator()
        res = sim.run([TraceBuilder.load_compute(
            20, load_latency=400.0)])
        # each pair costs ≈ the load latency (compute is dependent)
        assert res.cycles == pytest.approx(20 * 404.5, rel=0.05)


class TestStats:
    def test_unit_accounting(self):
        sim = SmSimulator()
        res = sim.run([TraceBuilder.load_compute(10,
                                                 load_latency=100.0)])
        assert res.unit_issue_counts[FunctionalUnit.LSU] == 10
        assert res.unit_issue_counts[FunctionalUnit.CUDA_CORE_FP32] \
            == 10
        assert res.instructions == 20

    def test_utilization_bounds(self):
        sim = SmSimulator()
        res = sim.run([TraceBuilder.independent_stream(
            100, latency=4.0, ii=1.0, regs=8)])
        u = res.unit_utilization(FunctionalUnit.CUDA_CORE_INT)
        assert 0.8 < u <= 1.0

    def test_warp_finish_times(self):
        sim = SmSimulator()
        res = sim.run([TraceBuilder.dependent_chain(10, latency=5.0),
                       TraceBuilder.dependent_chain(20, latency=5.0)])
        assert res.warp_finish_clk[1] > res.warp_finish_clk[0]


class TestValidation:
    def test_errors(self):
        sim = SmSimulator()
        with pytest.raises(ValueError):
            sim.run([])
        with pytest.raises(ValueError):
            SmSimulator(num_schedulers=0)
        with pytest.raises(ValueError):
            TraceInstr("x", FunctionalUnit.LSU, 0.0, 0.0)
        with pytest.raises(ValueError):
            TraceInstr("x", FunctionalUnit.LSU, 2.0, 4.0)

    def test_runaway_guard(self):
        sim = SmSimulator()
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run([TraceBuilder.dependent_chain(100, latency=500.0)],
                    max_cycles=100.0)


class TestAgainstAnalyticalModels:
    def test_mma_chain_matches_latency_model(self, h800):
        """A dependent mma accumulation loop runs at the calibrated
        completion latency per instruction."""
        instr = MmaInstruction(DType.FP16, DType.FP32,
                               MatrixShape(16, 8, 16))
        timing = MmaTiming(h800, instr)
        n = 64
        trace = TraceBuilder.mma_accumulate_loop(h800, instr, n)
        res = SmSimulator().run([trace])
        assert res.cycles == pytest.approx(n * timing.latency_clk,
                                           rel=0.05)

    def test_mma_throughput_matches_issue_model(self, h800):
        """Four warps with accumulator ILP saturate the tensor-core
        pipes at the calibrated issue interval → the simulator's
        device-wide TFLOPS matches the analytical Table VII value."""
        instr = MmaInstruction(DType.FP16, DType.FP32,
                               MatrixShape(16, 8, 16))
        timing = MmaTiming(h800, instr)
        n = 128
        traces = [TraceBuilder.mma_independent(h800, instr, n,
                                               accumulators=8)
                  for _ in range(4)]
        res = SmSimulator(num_schedulers=4).run(traces)
        flops = 4 * n * instr.flops
        tflops = (flops / res.cycles) * h800.num_sms \
            * h800.clocks.observed_hz / 1e12
        assert tflops == pytest.approx(timing.throughput_tflops(),
                                       rel=0.1)

    def test_a100_vs_h800_mma_gap_reproduced(self):
        """The simulator inherits the paper's finding: per-clock, the
        A100 outruns the H800 on the legacy mma path."""
        results = {}
        for dev_name in ("A100", "H800"):
            dev = get_device(dev_name)
            instr = MmaInstruction(DType.FP16, DType.FP32,
                                   MatrixShape(16, 8, 16))
            traces = [TraceBuilder.mma_independent(dev, instr, 64,
                                                   accumulators=8)
                      for _ in range(4)]
            res = SmSimulator().run(traces)
            results[dev_name] = 4 * 64 * instr.flops / res.cycles
        assert results["A100"] > 0.75 * results["H800"] / 0.65 * 0.487
        # per-clock flops: A100 ≈ 2048, H800 ≈ 2471
        assert results["A100"] == pytest.approx(2048, rel=0.1)
