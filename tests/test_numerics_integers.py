"""Tests for integer formats and symmetric quantisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics import INT4, INT8, dequantize_int, quantize_int
from repro.numerics.integers import INT32, IntFormat


class TestIntFormat:
    def test_ranges(self):
        assert (INT8.min_value, INT8.max_value) == (-128, 127)
        assert (INT4.min_value, INT4.max_value) == (-8, 7)
        assert INT32.max_value == 2 ** 31 - 1

    def test_storage(self):
        assert INT8.storage_bytes == 1.0
        assert INT4.storage_bytes == 0.5

    def test_clip(self):
        x = np.array([-300, -128, 0, 127, 300])
        assert list(INT8.clip(x)) == [-128, -128, 0, 127, 127]

    def test_wrap_two_complement(self):
        assert int(INT8.wrap(np.array([128]))[0]) == -128
        assert int(INT8.wrap(np.array([-129]))[0]) == 127
        assert int(INT8.wrap(np.array([255]))[0]) == -1
        assert int(INT8.wrap(np.array([127]))[0]) == 127

    def test_wrap_int32_overflow(self):
        assert int(INT32.wrap(np.array([2 ** 31]))[0]) == -(2 ** 31)

    def test_representable(self):
        assert INT4.representable(7)
        assert not INT4.representable(8)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            IntFormat("bad", 1)
        with pytest.raises(ValueError):
            IntFormat("bad", 64)


class TestQuantizeInt:
    def test_roundtrip_on_grid(self):
        x = np.array([-1.0, 0.0, 0.5, 1.0])
        q, scale = quantize_int(x, INT8)
        back = dequantize_int(q, scale)
        assert np.allclose(back, x, atol=scale / 2 + 1e-12)

    def test_auto_scale_uses_amax(self):
        x = np.array([0.0, 63.5, -127.0])
        q, scale = quantize_int(x, INT8)
        assert scale == pytest.approx(1.0)
        assert q.max() <= 127 and q.min() >= -128

    def test_explicit_scale(self):
        q, scale = quantize_int(np.array([2.0, 4.0]), INT8, scale=2.0)
        assert list(q) == [1, 2]
        assert scale == 2.0

    def test_saturation(self):
        q, _ = quantize_int(np.array([1.0, 100.0]), INT8, scale=0.01)
        assert q[1] == 127

    def test_zero_tensor(self):
        q, scale = quantize_int(np.zeros(4), INT8)
        assert scale == 1.0
        assert not q.any()

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            quantize_int(np.ones(2), INT8, scale=0.0)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                              allow_nan=False),
                    min_size=1, max_size=32))
    def test_error_bounded_by_half_step(self, values):
        x = np.array(values)
        q, scale = quantize_int(x, INT8)
        back = dequantize_int(q, scale)
        # within half a quantisation step unless clipped
        err = np.abs(back - x)
        assert np.all(err <= scale / 2 + 1e-9)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False),
                    min_size=1, max_size=16))
    def test_grid_values_in_range(self, values):
        q, _ = quantize_int(np.array(values), INT4)
        assert q.max() <= 7 and q.min() >= -8
