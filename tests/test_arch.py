"""Tests for the device registry and spec dataclasses."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.arch import (
    Architecture,
    CacheGeometry,
    ClockDomain,
    DeviceSpec,
    DramSpec,
    MemoryLatencies,
    MemoryWidths,
    TensorCoreSpec,
    get_device,
    list_devices,
    register_device,
)
from repro.arch.registry import PAPER_DEVICES


class TestArchitecture:
    def test_compute_capabilities(self):
        assert Architecture.VOLTA.compute_capability == "7.0"
        assert Architecture.AMPERE.compute_capability == "8.0"
        assert Architecture.ADA.compute_capability == "8.9"
        assert Architecture.HOPPER.compute_capability == "9.0"
        assert Architecture.BLACKWELL.compute_capability == "10.0"

    def test_tensor_core_generations(self):
        assert Architecture.VOLTA.tensor_core_generation == 1
        assert Architecture.AMPERE.tensor_core_generation == 3
        assert Architecture.ADA.tensor_core_generation == 4
        assert Architecture.HOPPER.tensor_core_generation == 4
        assert Architecture.BLACKWELL.tensor_core_generation == 5

    def test_hopper_exclusive_features(self):
        for feat in ("has_dpx_hardware", "has_distributed_shared_memory",
                     "has_wgmma", "has_tma"):
            assert getattr(Architecture.HOPPER, feat)
            assert not getattr(Architecture.AMPERE, feat)
            assert not getattr(Architecture.ADA, feat)

    def test_fp8_support(self):
        assert not Architecture.AMPERE.has_fp8
        assert Architecture.ADA.has_fp8
        assert Architecture.HOPPER.has_fp8

    def test_cp_async_sm80_onward(self):
        assert not Architecture.VOLTA.has_cp_async
        for a in (Architecture.AMPERE, Architecture.ADA,
                  Architecture.HOPPER, Architecture.BLACKWELL):
            assert a.has_cp_async

    def test_enum_properties_come_from_packs(self):
        for a in Architecture:
            assert a.compute_capability == a.pack.compute_capability
            assert a.has_wgmma == a.pack.has_wgmma


class TestRegistry:
    def test_three_paper_devices(self):
        assert set(PAPER_DEVICES) <= set(list_devices())
        assert {"A100", "RTX4090", "H800"} <= set(list_devices())

    def test_lookup_case_insensitive(self):
        assert get_device("h800") is get_device("H800")

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("H100")

    def test_lineage_devices_registered(self):
        assert {"B200", "V100"} <= set(list_devices())
        assert get_device("B200").pack.name == "blackwell"
        assert get_device("V100").pack.name == "volta"

    def test_duplicate_registration_rejected(self, h800):
        with pytest.raises(ValueError, match="already registered"):
            register_device(h800)

    def test_overwrite_allowed(self, h800):
        register_device(h800, overwrite=True)
        assert get_device("H800") is h800


class TestDeviceProperties:
    def test_table3_fields(self, h800):
        row = h800.table3_row()
        assert row["Comp. Capability"] == "9.0 (Hopper)"
        assert row["SMs * cores/SM"] == "114 * 128"
        assert row["Mem. Bandwidth"] == "2039 GB/s"
        assert row["DPX hardware"] == "Yes"
        assert row["Distributed shared memory"] == "Yes"

    def test_table3_negative_features(self, a100):
        row = a100.table3_row()
        assert row["DPX hardware"] == "No"
        assert row["Distributed shared memory"] == "No"

    def test_total_cuda_cores(self, a100, rtx4090, h800):
        assert a100.total_cuda_cores == 108 * 64
        assert rtx4090.total_cuda_cores == 128 * 128
        assert h800.total_cuda_cores == 114 * 128

    def test_tc_peaks_match_official(self, a100, rtx4090, h800):
        assert a100.tensor_core.dense_peak("fp16") == 312.0
        assert rtx4090.tensor_core.dense_peak("tf32") == 82.6
        assert h800.tensor_core.dense_peak("fp8") == 1513.0

    def test_sparse_peak_doubles(self, h800):
        tc = h800.tensor_core
        assert tc.sparse_peak_tflops("fp16") == 2 * tc.dense_peak("fp16")

    def test_unknown_precision_raises(self, a100):
        with pytest.raises(KeyError, match="not supported"):
            a100.tensor_core.dense_peak("fp8")  # Ampere has no FP8

    def test_tc_flops_per_clk_consistency(self, h800):
        # peak = per_clk × SMs × boost clock
        per_clk = h800.tc_flops_per_clk_sm("fp16")
        rebuilt = per_clk * h800.num_sms * h800.clocks.boost_hz / 1e12
        assert rebuilt == pytest.approx(756.5, rel=1e-9)

    def test_observed_clock_above_boost_only_on_4090(
            self, a100, rtx4090, h800):
        assert rtx4090.clocks.observed_sm_mhz > rtx4090.clocks.boost_sm_mhz
        assert a100.clocks.observed_sm_mhz == a100.clocks.boost_sm_mhz
        assert h800.clocks.observed_sm_mhz == h800.clocks.boost_sm_mhz

    def test_with_overrides(self, h800):
        derived = h800.with_overrides(power_cap_watts=700.0)
        assert derived.power_cap_watts == 700.0
        assert h800.power_cap_watts == 350.0
        assert derived.num_sms == h800.num_sms

    def test_global_latency_composition(self, any_device):
        lat = any_device.mem_latencies
        assert lat.global_clk == pytest.approx(
            lat.l2_hit_clk + lat.dram_clk
        )


class TestValidation:
    def test_clock_validation(self):
        with pytest.raises(ValueError):
            ClockDomain(base_sm_mhz=-1, boost_sm_mhz=100,
                        observed_sm_mhz=100, memory_mhz=100)
        with pytest.raises(ValueError, match="boost clock below base"):
            ClockDomain(base_sm_mhz=2000, boost_sm_mhz=1000,
                        observed_sm_mhz=1000, memory_mhz=100)

    def test_cache_geometry_validation(self):
        with pytest.raises(ValueError, match="multiple of sector"):
            CacheGeometry(l1_size_kib=128, shared_max_kib=100,
                          l2_size_kib=1024, line_bytes=100,
                          sector_bytes=32)
        with pytest.raises(ValueError):
            CacheGeometry(l1_size_kib=0, shared_max_kib=100,
                          l2_size_kib=1024)

    def test_latency_ordering_enforced(self):
        with pytest.raises(ValueError, match="shared <= L1 <= L2"):
            MemoryLatencies(shared_clk=50, l1_hit_clk=40,
                            l2_hit_clk=260, dram_clk=200)

    def test_widths_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryWidths(l1_bytes_per_clk_sm=0,
                         smem_bytes_per_clk_sm=128,
                         l2_bytes_per_clk=2000, lsu_issue_per_clk=1,
                         fp64_add_bytes_per_clk_sm=16)

    def test_cluster_requires_dsm(self, a100):
        with pytest.raises(ValueError, match="clusters require"):
            a100.with_overrides(max_cluster_size=8)

    def test_tensor_core_validation(self):
        with pytest.raises(ValueError, match="count must be positive"):
            TensorCoreSpec(count=0, generation=4)
        with pytest.raises(ValueError, match="must be positive"):
            TensorCoreSpec(count=4, generation=4,
                           dense_peak_tflops={"fp16": -1.0})


class TestDramSpec:
    def test_effective_bandwidth_below_peak(self, any_device):
        d = any_device.dram
        assert d.effective_bandwidth_gbps(1.0) < d.peak_bandwidth_gbps

    def test_mixed_stream_pays_turnaround(self, h800):
        d = h800.dram
        assert (d.effective_bandwidth_gbps(0.5)
                < d.effective_bandwidth_gbps(1.0))
        # symmetric in read fraction
        assert d.effective_bandwidth_gbps(0.3) == pytest.approx(
            d.effective_bandwidth_gbps(0.7))

    def test_read_fraction_validated(self, h800):
        with pytest.raises(ValueError):
            h800.dram.effective_bandwidth_gbps(1.5)

    def test_refresh_overhead_bounds(self):
        with pytest.raises(ValueError, match="refresh_overhead"):
            DramSpec(size_gib=8, mem_type="HBM", bus_width_bits=1024,
                     peak_bandwidth_gbps=1000, refresh_overhead=0.9)
