"""Tests for the structured tracer (repro.obs.trace)."""

from __future__ import annotations

import json

from repro.obs.trace import SIM_TRACK, WALL_TRACK, Tracer


class TestTracer:
    def test_complete_event_shape(self):
        t = Tracer()
        t.complete("probe", 10.0, 5.0, cat="sweep",
                   args={"points": 3})
        (ev,) = t.events
        assert ev["ph"] == "X" and ev["ts"] == 10.0 and ev["dur"] == 5.0
        assert ev["pid"] == WALL_TRACK and ev["cat"] == "sweep"
        assert ev["args"] == {"points": 3}

    def test_negative_duration_clamped(self):
        t = Tracer()
        t.complete("x", 0.0, -3.0)
        assert t.events[0]["dur"] == 0.0

    def test_instant_defaults_to_wall_clock(self):
        t = Tracer()
        t.instant("marker")
        ev = t.events[0]
        assert ev["ph"] == "i" and ev["s"] == "t"
        assert ev["ts"] >= 0.0

    def test_sim_track_uses_cycle_timestamps(self):
        t = Tracer()
        t.complete("HMMA", 128.0, 8.0, pid=SIM_TRACK, tid="sched0")
        ev = t.events[0]
        assert ev["pid"] == SIM_TRACK and ev["ts"] == 128.0

    def test_span_measures_wall(self):
        t = Tracer()
        with t.span("work", cat="probe"):
            pass
        (ev,) = t.events
        assert ev["ph"] == "X" and ev["dur"] >= 0.0

    def test_merge_appends_verbatim(self):
        a = Tracer()
        a.instant("local")
        b = Tracer()
        b.complete("shipped", 1.0, 2.0, pid=SIM_TRACK)
        a.merge(b.events)
        assert len(a) == 2
        assert a.events[1]["name"] == "shipped"


class TestChromeExport:
    def _sample(self) -> Tracer:
        t = Tracer()
        t.complete("sweep", 0.0, 10.0, cat="probe")
        t.complete("LDG", 5.0, 2.0, pid=SIM_TRACK, tid="sched1")
        t.instant("cache hit", ts=3.0)
        t.counter("stalls", {"scoreboard": 4}, ts=7.0)
        return t

    def test_payload_is_perfetto_shaped(self):
        payload = self._sample().chrome_payload()
        evs = payload["traceEvents"]
        assert isinstance(evs, list) and evs
        for ev in evs:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] != "M":
                assert isinstance(ev["ts"], (int, float))

    def test_track_metadata_names_both_clock_domains(self):
        payload = self._sample().chrome_payload()
        names = [ev["args"]["name"] for ev in payload["traceEvents"]
                 if ev["name"] == "process_name"]
        assert WALL_TRACK in names and SIM_TRACK in names
        assert "cycle" in payload["otherData"]["clock_note"]

    def test_write_chrome_roundtrip(self, tmp_path):
        path = self._sample().write_chrome(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]

    def test_write_jsonl_one_event_per_line(self, tmp_path):
        t = self._sample()
        path = t.write_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(t.events)
        assert all(json.loads(line)["name"] for line in lines)
