"""Tests pinning the simulator's absolute fidelity to the paper.

The experiments check *shape*; these tests pin the mean absolute
percentage error of every artefact with published numbers, so a model
regression shows up as a concrete number.
"""

from __future__ import annotations

import pytest

from repro.core.fidelity import (
    FidelityEntry,
    compute_all,
    fidelity_report,
)

#: per-artefact MAPE ceilings (fractions).  The calibrated instruction
#: and memory models sit well under 5 %; the system-level models (LLM
#: harness with host noise, async-copy grid) are allowed more.
MAPE_BOUNDS = {
    "Table IV (latency)": 0.01,
    "Table V (throughput)": 0.02,
    "Table VII (mma)": 0.03,
    "Table VIII (dense wgmma)": 0.02,
    "Table IX (sparse wgmma)": 0.03,
    "Table X (wgmma N sweep)": 0.04,
    "Table XI (energy)": 0.02,
    "Table XII (LLM)": 0.20,
    "Tables XIII/XIV (async copy)": 0.15,
    "§IV-E DSM scalars": 0.03,
}


@pytest.fixture(scope="module")
def all_fidelity():
    return {tf.name: tf for tf in compute_all()}


class TestFidelity:
    def test_every_artefact_scored(self, all_fidelity):
        assert set(all_fidelity) == set(MAPE_BOUNDS)

    @pytest.mark.parametrize("name", sorted(MAPE_BOUNDS))
    def test_mape_within_bound(self, all_fidelity, name):
        tf = all_fidelity[name]
        assert tf.mape <= MAPE_BOUNDS[name], (
            f"{name}: MAPE {100 * tf.mape:.2f}% exceeds "
            f"{100 * MAPE_BOUNDS[name]:.0f}% "
            f"(worst: {tf.worst.label} at "
            f"{100 * tf.worst.rel_error:.1f}%)"
        )

    def test_cell_counts(self, all_fidelity):
        # every published cell is compared
        assert len(all_fidelity["Table VII (mma)"].entries) == 24 * 3
        assert len(all_fidelity["Table XI (energy)"].entries) == 24 * 2
        assert len(
            all_fidelity["Tables XIII/XIV (async copy)"].entries
        ) == 2 * 3 * 2 * 6

    def test_entry_rel_error(self):
        assert FidelityEntry("x", 100.0, 110.0).rel_error \
            == pytest.approx(0.1)
        assert FidelityEntry("x", 0.0, 0.5).rel_error == 0.5

    def test_report_renders(self, all_fidelity):
        out = fidelity_report().render()
        assert "MAPE %" in out
        assert "Table VII (mma)" in out
