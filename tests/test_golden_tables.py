"""Golden snapshot tests pinning the rendered paper artefacts.

The fixtures under ``tests/golden/`` were captured from the scalar
(pre-vectorization) implementations of the tensor-core sweep and the
Transformer-Engine cost walks.  Any drift — a reordered float
operation, a changed format string, a perturbed calibration constant —
fails here with a readable unified diff, so the vectorized fast paths
are provably render-identical to the reference code they replaced.

Regenerating a fixture is a deliberate act::

    PYTHONPATH=src python -m tests.test_golden_tables table07_mma

(only do this when the *model* intentionally changed, never to paper
over an equivalence break).
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

from repro.core import run_experiment

GOLDEN_DIR = Path(__file__).parent / "golden"

#: every artefact the vectorized tensor-core / TE paths feed
GOLDEN_NAMES = [
    "table07_mma",
    "table08_wgmma_dense",
    "table09_wgmma_sparse",
    "table10_wgmma_nsweep",
    "table11_energy",
    "fig03_te_breakdown",
    "fig04_te_linear",
    "fig05_te_layer",
    "table12_llm",
]


def _render(name: str) -> str:
    return run_experiment(name).render() + "\n"


@pytest.mark.parametrize("name", GOLDEN_NAMES)
def test_rendered_output_matches_golden(name):
    fixture = GOLDEN_DIR / f"{name}.txt"
    assert fixture.exists(), (
        f"missing fixture {fixture}; generate it with "
        f"`python -m tests.test_golden_tables {name}`"
    )
    expected = fixture.read_text()
    actual = _render(name)
    if actual != expected:
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile=f"golden/{name}.txt",
            tofile=f"current {name}",
        ))
        pytest.fail(
            f"{name} drifted from its golden snapshot:\n{diff}",
            pytrace=False,
        )


def test_fixture_dir_has_no_strays():
    """Every committed fixture is owned by a test (no zombie files)."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.txt")}
    assert on_disk == set(GOLDEN_NAMES)


if __name__ == "__main__":  # pragma: no cover - fixture regeneration
    import sys

    names = sys.argv[1:] or GOLDEN_NAMES
    for name in names:
        (GOLDEN_DIR / f"{name}.txt").write_text(_render(name))
        print(f"regenerated golden/{name}.txt")
