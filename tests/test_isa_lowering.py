"""Tests for the PTX → SASS lowering pass (Table VI)."""

from __future__ import annotations

import pytest

from repro.arch import Architecture
from repro.isa import (
    CpAsync,
    FunctionalUnit,
    LoadGlobal,
    LoadShared,
    Mapa,
    MatrixShape,
    MmaInstruction,
    TmaCopy,
    WgmmaInstruction,
    lower,
    sass_table,
)
from repro.isa.dtypes import DType
from repro.isa.lowering import UnsupportedInstruction, lower_dpx
from repro.isa.memory_ops import CacheOp, Ldmatrix

H = Architecture.HOPPER
A = Architecture.AMPERE
L = Architecture.ADA


def _mma(ab, cd, shape, sparse=False):
    return MmaInstruction(ab, cd, MatrixShape(*shape), sparse=sparse)


class TestMmaLowering:
    def test_fp16_names(self):
        lo = lower(_mma(DType.FP16, DType.FP16, (16, 8, 16)), H)
        assert lo.primary.mnemonic == "HMMA.16816.F16"
        lo = lower(_mma(DType.FP16, DType.FP32, (16, 8, 8)), A)
        assert lo.primary.mnemonic == "HMMA.1688.F32"

    def test_tf32_suffix(self):
        lo = lower(_mma(DType.TF32, DType.FP32, (16, 8, 8)), H)
        assert lo.primary.mnemonic == "HMMA.1688.F32.TF32"

    def test_bf16_suffix(self):
        lo = lower(_mma(DType.BF16, DType.FP32, (16, 8, 16)), H)
        assert lo.primary.mnemonic == "HMMA.16816.F32.BF16"

    def test_int8(self):
        lo = lower(_mma(DType.INT8, DType.INT32, (16, 8, 32)), L)
        assert lo.primary.mnemonic == "IMMA.16832.S8.S8"

    def test_binary(self):
        lo = lower(_mma(DType.BIN1, DType.INT32, (16, 8, 256)), H)
        assert lo.primary.mnemonic == "BMMA.168256.AND.POPC"

    def test_fp64(self):
        lo = lower(_mma(DType.FP64, DType.FP64, (8, 8, 4)), A)
        assert lo.primary.mnemonic == "DMMA.884.F64"

    def test_sparse_marker(self):
        lo = lower(_mma(DType.FP16, DType.FP32, (16, 8, 16), True), H)
        assert "SP." in lo.primary.mnemonic
        assert "16832" in lo.primary.mnemonic  # k doubled in SASS name

    def test_int4_on_ampere_ada_uses_imma(self):
        for arch in (A, L):
            lo = lower(_mma(DType.INT4, DType.INT32, (16, 8, 32)), arch)
            assert lo.primary.mnemonic == "IMMA.16832.S4.S4"
            assert lo.uses_tensor_core

    def test_int4_on_hopper_falls_to_cuda_cores(self):
        lo = lower(_mma(DType.INT4, DType.INT32, (16, 8, 64)), H)
        assert lo.primary.mnemonic == "IMAD.MOV.U32"
        assert not lo.uses_tensor_core
        assert lo.primary.unit is FunctionalUnit.CUDA_CORE_INT
        # a 16×8×64 tile needs one 32-lane IMAD per 32 scalar MACs
        assert lo.instruction_count == 16 * 8 * 64 // 32

    def test_fp8_mma_does_not_exist(self):
        for arch in (A, L, H):
            with pytest.raises(UnsupportedInstruction, match="FP8"):
                # construct bypassing MmaInstruction validation is not
                # possible — FP8 has no mma shapes at all
                from repro.isa.lowering import _lower_mma
                class _Fake:
                    ab_type = DType.E4M3
                    cd_type = DType.FP16
                _lower_mma(_Fake(), arch)


class TestWgmmaLowering:
    def test_hopper_only(self):
        w = WgmmaInstruction(DType.FP16, DType.FP32, 256)
        for arch in (A, L):
            with pytest.raises(UnsupportedInstruction, match="Hopper"):
                lower(w, arch)

    def test_hgmma(self):
        lo = lower(WgmmaInstruction(DType.FP16, DType.FP16, 256), H)
        assert lo.primary.mnemonic == "HGMMA.64x256x16.F16"

    def test_qgmma_variants(self):
        for dt, tag in ((DType.E4M3, "E4M3"), (DType.E5M2, "E5M2")):
            lo = lower(WgmmaInstruction(dt, DType.FP32, 256), H)
            assert lo.primary.mnemonic == \
                f"QGMMA.64x256x32.F32.{tag}.{tag}"

    def test_igmma_bgmma(self):
        lo = lower(WgmmaInstruction(DType.INT8, DType.INT32, 256), H)
        assert lo.primary.mnemonic == "IGMMA.64x256x32.S8.S8"
        lo = lower(WgmmaInstruction(DType.BIN1, DType.INT32, 256), H)
        assert lo.primary.mnemonic == "BGMMA.64x256x256.AND.POPC"

    def test_shape_in_name_follows_n(self):
        lo = lower(WgmmaInstruction(DType.FP16, DType.FP32, 64), H)
        assert "64x64x16" in lo.primary.mnemonic

    def test_sparse_name_doubles_k(self):
        lo = lower(WgmmaInstruction(DType.FP16, DType.FP32, 256,
                                    sparse=True), H)
        assert "SP." in lo.primary.mnemonic
        assert "64x256x32" in lo.primary.mnemonic


class TestMemoryOpLowering:
    def test_ldg(self):
        lo = lower(LoadGlobal(4, 1, CacheOp.CACHE_ALL), H)
        assert lo.primary.mnemonic == "LDG.E.32"
        assert lo.primary.unit is FunctionalUnit.LSU

    def test_ldg_cg_modifier(self):
        lo = lower(LoadGlobal(4, 1, CacheOp.CACHE_GLOBAL), H)
        assert "STRONG.GPU" in lo.primary.mnemonic

    def test_lds(self):
        lo = lower(LoadShared(4, 4), A)
        assert lo.primary.mnemonic == "LDS.128"

    def test_cp_async(self):
        lo = lower(CpAsync(16), A)
        assert lo.primary.mnemonic.startswith("LDGSTS")

    def test_tma_gated(self):
        assert lower(TmaCopy(4096), H).primary.mnemonic == "UBLKCP"
        with pytest.raises(UnsupportedInstruction):
            lower(TmaCopy(4096), A)

    def test_mapa_gated(self):
        assert lower(Mapa(3), H).primary.mnemonic == "MAPA"
        with pytest.raises(UnsupportedInstruction):
            lower(Mapa(3), L)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            lower(object(), H)


class TestDpxLowering:
    def test_hardware_path(self):
        lo = lower_dpx("__vimax3_s32", arch=H,
                       hw_mnemonics=["VIMNMX3"],
                       emulation_mnemonics=["IMNMX", "IMNMX"])
        assert [s.mnemonic for s in lo.sass] == ["VIMNMX3"]
        assert lo.primary.unit is FunctionalUnit.DPX

    def test_emulation_path(self):
        lo = lower_dpx("__vimax3_s32", arch=A,
                       hw_mnemonics=["VIMNMX3"],
                       emulation_mnemonics=["IMNMX", "IMNMX"])
        assert [s.mnemonic for s in lo.sass] == ["IMNMX", "IMNMX"]
        assert all(s.unit is FunctionalUnit.CUDA_CORE_INT
                   for s in lo.sass)


class TestSassTable:
    def test_matches_paper_table6(self):
        rows = {(r["A/B"], r["C/D"]): r for r in sass_table(H)}
        assert rows[("FP16", "FP16")]["mma"] == "HMMA.16816.F16"
        assert rows[("FP16", "FP16")]["wgmma"] == "HGMMA.64x256x16.F16"
        assert rows[("TF32", "FP32")]["wgmma"] == \
            "HGMMA.64x256x8.F32.TF32"
        assert rows[("FP8 (E5M2)", "FP16")]["wgmma"] == \
            "QGMMA.64x256x32.F16.E5M2.E5M2"
        assert rows[("INT4", "INT32")]["mma"] == "IMAD.MOV.U32"
        assert rows[("INT4", "INT32")]["wgmma"] == "×"
        assert rows[("FP8 (E4M3)", "FP32")]["mma"] == "×"

    def test_ampere_table_has_no_wgmma(self):
        rows = sass_table(A)
        assert all(r["wgmma"] == "×" for r in rows)

    def test_ampere_int4_stays_on_tensor_core(self):
        rows = {(r["A/B"], r["C/D"]): r for r in sass_table(A)}
        assert rows[("INT4", "INT32")]["mma"] == "IMMA.16864.S4.S4"

    def test_ldmatrix_descriptor(self):
        lm = Ldmatrix(num=4, transpose=True)
        assert lm.bytes_per_warp == 512
        assert "trans" in lm.opcode
        with pytest.raises(ValueError):
            Ldmatrix(num=3)
