"""Tests for the TmaPipe variant of the tiled-matmul model."""

from __future__ import annotations

import pytest

from repro.asynccopy import AsyncCopyConfig, CopyVariant, \
    TiledMatmulModel

TMA, ASYNC, SYNC = CopyVariant.TMA, CopyVariant.ASYNC, CopyVariant.SYNC


class TestTmaVariant:
    def test_hopper_only(self, a100, h800):
        cfg = AsyncCopyConfig(16, 4, TMA)
        TiledMatmulModel(h800).throughput_gflops(cfg)
        with pytest.raises(ValueError, match="TMA"):
            TiledMatmulModel(a100).throughput_gflops(cfg)

    def test_negligible_issue_cost(self, h800):
        m = TiledMatmulModel(h800)
        assert m.copy_issue_clk(AsyncCopyConfig(32, 1, TMA)) == 4.0
        assert m.copy_issue_clk(AsyncCopyConfig(32, 1, ASYNC)) == 64.0

    def test_dominates_cp_async(self, h800):
        m = TiledMatmulModel(h800)
        for b in (8, 16, 32):
            for nb in (1, 2, 8, 32):
                t = m.throughput_gflops(AsyncCopyConfig(b, nb, TMA))
                a = m.throughput_gflops(AsyncCopyConfig(b, nb, ASYNC))
                assert t >= a * 0.999, (b, nb)

    def test_same_smem_footprint_as_async(self):
        t = AsyncCopyConfig(16, 1, TMA, pipeline_stages=3)
        a = AsyncCopyConfig(16, 1, ASYNC, pipeline_stages=3)
        assert t.smem_bytes_per_block == a.smem_bytes_per_block

    def test_needs_double_buffering(self):
        with pytest.raises(ValueError, match="stages"):
            AsyncCopyConfig(8, 1, TMA, pipeline_stages=1)

    def test_no_issue_tax_at_saturation(self, h800):
        m = TiledMatmulModel(h800)
        tma = m.flops_per_clk_sm(AsyncCopyConfig(16, 32, TMA))
        assert tma == pytest.approx(m.smem_cap_flops_clk(), rel=0.001)

    def test_monotone_in_blocks(self, h800):
        m = TiledMatmulModel(h800)
        vals = [m.throughput_gflops(AsyncCopyConfig(8, nb, TMA))
                for nb in (1, 2, 4, 8, 16, 32)]
        assert all(a <= b * 1.001 for a, b in zip(vals, vals[1:]))
