"""Tests for tensor-core timing against Tables VII–X."""

from __future__ import annotations

import pytest

from repro.arch import get_device
from repro.isa import (
    MatrixShape,
    MmaInstruction,
    OperandSource,
    WgmmaInstruction,
)
from repro.isa.dtypes import DType
from repro.isa.lowering import UnsupportedInstruction
from repro.tensorcore import TensorCoreTimingModel

SS = OperandSource.SHARED
RS = OperandSource.REGISTER


def mma(ab, cd, shape, sparse=False):
    return MmaInstruction(ab, cd, MatrixShape(*shape), sparse=sparse)


#: Table VII reference (LAT, dense TFLOPS, sparse TFLOPS) subsets
PAPER_MMA = {
    ("A100", DType.FP16, DType.FP16, (16, 8, 16)): (24.6, 310.6, 622.8),
    ("A100", DType.TF32, DType.FP32, (16, 8, 8)): (26.3, 151.5, 301.5),
    ("A100", DType.INT8, DType.INT32, (16, 8, 32)): (26.0, 607.6, 1210),
    ("RTX4090", DType.FP16, DType.FP16, (16, 8, 16)): (24.6, 357.6,
                                                       711.8),
    ("RTX4090", DType.FP16, DType.FP32, (16, 8, 16)): (33.0, 178.9,
                                                       356.0),
    ("RTX4090", DType.TF32, DType.FP32, (16, 8, 8)): (33.4, 89.0, 178.7),
    ("H800", DType.FP16, DType.FP16, (16, 8, 16)): (24.1, 494.4, 722.8),
    ("H800", DType.INT8, DType.INT32, (16, 8, 32)): (24.0, 977.9, 1435),
}


class TestMmaTiming:
    @pytest.mark.parametrize("key", sorted(PAPER_MMA, key=str))
    def test_matches_table7(self, key):
        dev, ab, cd, shape = key
        lat, dense, sparse = PAPER_MMA[key]
        tm = TensorCoreTimingModel(get_device(dev))
        d = tm.mma(mma(ab, cd, shape))
        s = tm.mma(mma(ab, cd, shape, sparse=True))
        assert d.latency_clk == pytest.approx(lat, rel=0.06)
        assert d.throughput_tflops() == pytest.approx(dense, rel=0.06)
        assert s.throughput_tflops() == pytest.approx(sparse, rel=0.06)

    def test_hopper_mma_fraction_of_peak(self, h800):
        tm = TensorCoreTimingModel(h800)
        t = tm.mma(mma(DType.FP16, DType.FP16, (16, 8, 16)))
        assert 0.6 < t.fraction_of_peak() < 0.7

    def test_a100_saturates(self, a100):
        tm = TensorCoreTimingModel(a100)
        t = tm.mma(mma(DType.FP16, DType.FP16, (16, 8, 16)))
        assert t.fraction_of_peak() > 0.95

    def test_sparse_latency_equals_dense(self, any_device):
        tm = TensorCoreTimingModel(any_device)
        d = tm.mma(mma(DType.INT8, DType.INT32, (16, 8, 32)))
        s = tm.mma(mma(DType.INT8, DType.INT32, (16, 8, 32), True))
        assert d.latency_clk == s.latency_clk

    def test_ada_fp32_acc_half_rate(self, rtx4090):
        tm = TensorCoreTimingModel(rtx4090)
        f16 = tm.mma(mma(DType.FP16, DType.FP16, (16, 8, 16)))
        f32 = tm.mma(mma(DType.FP16, DType.FP32, (16, 8, 16)))
        assert f32.throughput_tflops() == pytest.approx(
            f16.throughput_tflops() / 2, rel=0.01)

    def test_int4_on_hopper_is_slow(self, h800, a100):
        i = mma(DType.INT4, DType.INT32, (16, 8, 64))
        hopper = TensorCoreTimingModel(h800).mma(i)
        ampere = TensorCoreTimingModel(a100).mma(i)
        assert not hopper.on_tensor_core
        assert ampere.on_tensor_core
        # Hopper INT4 runs on CUDA cores: orders of magnitude slower
        assert hopper.throughput_tflops() < 0.05 * 1513
        assert hopper.latency_clk > 100

    def test_issue_interval_positive(self, any_device):
        tm = TensorCoreTimingModel(any_device)
        t = tm.mma(mma(DType.FP16, DType.FP32, (16, 8, 8)))
        assert t.issue_interval_clk > 0

    def test_rand_does_not_throttle_mma(self, h800):
        tm = TensorCoreTimingModel(h800)
        t = tm.mma(mma(DType.FP16, DType.FP16, (16, 8, 16)))
        assert t.throughput_tflops("rand") == pytest.approx(
            t.throughput_tflops("zero"), rel=1e-6)


#: Table VIII/IX spot references: (ss_lat, ss_thpt, rs_lat, rs_thpt)
PAPER_WGMMA = {
    (DType.FP16, DType.FP16, False): (128.0, 729.3, 128.0, 729.2),
    (DType.TF32, DType.FP32, False): (128.0, 364.4, 128.0, 364.6),
    (DType.E4M3, DType.FP32, False): (128.0, 1447.5, 128.0, 1455.0),
    (DType.FP16, DType.FP32, True): (144.0, 1312.3, 128.0, 1476.2),
    (DType.INT8, DType.INT32, True): (144.0, 2612.4, 128.0, 2933.0),
}


class TestWgmmaTiming:
    def test_requires_hopper(self, a100):
        with pytest.raises(UnsupportedInstruction):
            TensorCoreTimingModel(a100).wgmma(
                WgmmaInstruction(DType.FP16, DType.FP32, 256))

    @pytest.mark.parametrize("key", sorted(PAPER_WGMMA, key=str))
    def test_matches_tables_8_9(self, key, h800):
        ab, cd, sparse = key
        ss_lat, ss_thpt, rs_lat, rs_thpt = PAPER_WGMMA[key]
        tm = TensorCoreTimingModel(h800)
        ss = tm.wgmma(WgmmaInstruction(ab, cd, 256, sparse=sparse,
                                       a_source=SS))
        rs = tm.wgmma(WgmmaInstruction(ab, cd, 256, sparse=sparse,
                                       a_source=RS))
        assert ss.latency_clk == ss_lat
        assert rs.latency_clk == rs_lat
        assert ss.throughput_tflops() == pytest.approx(ss_thpt, rel=0.04)
        assert rs.throughput_tflops() == pytest.approx(rs_thpt, rel=0.04)

    def test_dense_latency_is_half_n(self, h800):
        tm = TensorCoreTimingModel(h800)
        for n in (64, 128, 256):
            t = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, n,
                                          a_source=RS))
            assert t.latency_clk == n / 2

    def test_latency_floor_at_small_n(self, h800):
        tm = TensorCoreTimingModel(h800)
        t8 = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 8,
                                       a_source=RS))
        t16 = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 16,
                                        a_source=RS))
        assert t8.latency_clk == t16.latency_clk == 13.0

    def test_sparse_ss_extra_is_unpruned_a_traffic(self, h800):
        """144 − 128 = m·k·bytes / smem width for EVERY dtype."""
        tm = TensorCoreTimingModel(h800)
        for ab, cd in ((DType.FP16, DType.FP32),
                       (DType.TF32, DType.FP32),
                       (DType.E4M3, DType.FP32),
                       (DType.INT8, DType.INT32)):
            t = tm.wgmma(WgmmaInstruction(ab, cd, 256, sparse=True,
                                          a_source=SS))
            assert t.latency_clk == 144.0, ab

    def test_zero_init_fraction_of_peak(self, h800):
        tm = TensorCoreTimingModel(h800)
        t = tm.wgmma(WgmmaInstruction(DType.E4M3, DType.FP16, 256,
                                      a_source=SS))
        assert t.fraction_of_peak() > 0.95

    def test_rand_throttles_wgmma(self, h800):
        tm = TensorCoreTimingModel(h800)
        t = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 256,
                                      a_source=SS))
        drop = t.throughput_tflops("rand") / t.throughput_tflops("zero")
        assert 0.85 < drop < 0.95  # paper: 665.4 / 728.5 ≈ 0.913

    def test_nsweep_throughput_monotone(self, h800):
        tm = TensorCoreTimingModel(h800)
        vals = [
            tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, n,
                                      a_source=SS)).throughput_tflops()
            for n in (8, 16, 32, 64, 128, 256)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(vals, vals[1:]))
        assert vals[-1] > 4 * vals[0]

    def test_small_n_ss_worse_than_rs(self, h800):
        tm = TensorCoreTimingModel(h800)
        for n in (8, 16, 32):
            ss = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, n,
                                           a_source=SS))
            rs = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, n,
                                           a_source=RS))
            assert ss.throughput_tflops() < rs.throughput_tflops()
            assert ss.latency_clk > rs.latency_clk

    def test_large_n_ss_equals_rs(self, h800):
        tm = TensorCoreTimingModel(h800)
        ss = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 128,
                                       a_source=SS))
        rs = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 128,
                                       a_source=RS))
        assert ss.throughput_tflops() == pytest.approx(
            rs.throughput_tflops())

    def test_best_dense_tflops_paths(self, h800, a100, rtx4090):
        # Hopper → wgmma; Ampere → mma; Ada FP8 → library fallback
        assert TensorCoreTimingModel(h800).best_dense_tflops(
            DType.FP16, DType.FP32) > 600
        assert TensorCoreTimingModel(a100).best_dense_tflops(
            DType.FP16, DType.FP32) > 290
        assert TensorCoreTimingModel(rtx4090).best_dense_tflops(
            DType.E4M3, DType.FP32) > 500
        with pytest.raises(KeyError):
            TensorCoreTimingModel(a100).best_dense_tflops(
                DType.E4M3, DType.FP32)
