"""The labeled export layer: OpenMetrics + counters/v2.

Pins the two properties the export exists for:

* **byte-determinism** — serial and ``--jobs N`` runs render the very
  same OpenMetrics text and counters/v2 JSON, across every registered
  device (the labels ride the process-pool merge losslessly);
* **faithful labeling** — the per-experiment banks round-trip through
  the v2 document exactly, the orchestration remainder accounts for
  every counter the experiments didn't fire, and the OpenMetrics
  rendering is structurally valid (cumulative buckets, ``# EOF``,
  escaped labels).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import list_devices
from repro.core.context import RunContext
from repro.obs import ObsSession
from repro.obs.export import (
    ORCHESTRATION,
    context_labels,
    load_counters_v2,
    metric_name,
    render_counters_v2,
    render_openmetrics,
)
from repro.perf import run_experiments

#: fast, supported on every registered device, and counter-emitting —
#: so the per-device determinism sweep always has labeled banks to
#: compare
CHEAP = ["table04_mem_latency", "ext_cache_detection"]


def run_session(jobs: int, devices=None) -> ObsSession:
    session = ObsSession()
    kwargs = {"devices": tuple(devices)} if devices else {}
    ctx = session.bind(RunContext(**kwargs))
    with session.activate():
        run_experiments(CHEAP, jobs=jobs, cache=None, context=ctx)
    session.context = ctx   # stash for the assertions
    return session


class TestExportDeterminism:
    @pytest.mark.parametrize("device", list_devices())
    def test_serial_vs_pool_byte_identical(self, device):
        serial = run_session(1, devices=[device])
        fanned = run_session(4, devices=[device])
        s_banks = serial._labeled_banks()
        f_banks = fanned._labeled_banks()
        s_labels = context_labels(serial.context)
        assert render_openmetrics(s_banks, labels=s_labels) == \
            render_openmetrics(f_banks,
                               labels=context_labels(fanned.context))
        assert render_counters_v2(
            serial.experiment_counters(),
            serial.orchestration_counters(),
            labels=s_labels, context=serial.context,
        ) == render_counters_v2(
            fanned.experiment_counters(),
            fanned.orchestration_counters(),
            labels=context_labels(fanned.context),
            context=fanned.context,
        )

    def test_files_byte_identical(self, tmp_path):
        paths = {}
        for jobs in (1, 4):
            s = run_session(jobs)
            om = tmp_path / f"j{jobs}.prom"
            v2 = tmp_path / f"j{jobs}.json"
            s.write_openmetrics(om, context=s.context)
            s.write_counters_v2(v2, context=s.context)
            paths[jobs] = (om.read_bytes(), v2.read_bytes())
        assert paths[1] == paths[4]

    def test_every_experiment_gets_a_bank(self):
        s = run_session(1)
        assert sorted(s.per_experiment) == sorted(CHEAP)
        for name in CHEAP:
            assert s.per_experiment[name], f"empty bank for {name}"

    def test_orchestration_plus_banks_equals_flat(self):
        s = run_session(1)
        total = dict(s.orchestration_counters())
        for bank in s.per_experiment.values():
            for k, v in bank.as_dict().items():
                total[k] = total.get(k, 0) + v
        assert total == s.counters.as_dict()

    def test_exp_completed_is_orchestration(self):
        s = run_session(1)
        assert s.orchestration_counters()["exp.completed"] == \
            len(CHEAP)
        for bank in s.per_experiment.values():
            assert "exp.completed" not in bank.as_dict()


class TestOpenMetricsShape:
    BANKS = {
        "exp_a": {"mem.loads": 3,
                  "mem.latency.l2.le00000256": 2,
                  "mem.latency.l2.le00001024": 1},
        ORCHESTRATION: {"exp.completed": 1},
    }

    def test_counter_sample(self):
        text = render_openmetrics(self.BANKS,
                                  labels={"device": "A100"})
        assert "# TYPE hopperdissect_mem_loads counter" in text
        assert ('hopperdissect_mem_loads_total{device="A100",'
                'experiment="exp_a"} 3') in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_openmetrics(self.BANKS)
        assert ('hopperdissect_mem_latency_l2_bucket{'
                'experiment="exp_a",le="256"} 2') in text
        assert ('hopperdissect_mem_latency_l2_bucket{'
                'experiment="exp_a",le="1024"} 3') in text
        assert ('hopperdissect_mem_latency_l2_bucket{'
                'experiment="exp_a",le="+Inf"} 3') in text
        assert ('hopperdissect_mem_latency_l2_count{'
                'experiment="exp_a"} 3') in text

    def test_ends_with_eof(self):
        assert render_openmetrics(self.BANKS).endswith("# EOF\n")

    def test_orchestration_label(self):
        text = render_openmetrics(self.BANKS)
        assert ('hopperdissect_exp_completed_total{'
                'experiment="_orchestration"} 1') in text

    def test_label_escaping(self):
        text = render_openmetrics(
            {"e": {"x": 1}}, labels={"device": 'A"\\\n'})
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert "\n\\" not in text.replace("\\n", "")

    def test_metric_name_sanitizes(self):
        assert metric_name("dsm.hops") == "hopperdissect_dsm_hops"
        assert metric_name("weird-name!") == \
            "hopperdissect_weird_name_"

    def test_deep_tail_buckets_numeric_order(self):
        banks = {"e": {"lat.le134217728": 1, "lat.le1073741824": 2,
                       "lat.le00000256": 4}}
        text = render_openmetrics(banks)
        i256 = text.index('le="256"')
        i27 = text.index('le="134217728"')
        i30 = text.index('le="1073741824"')
        assert i256 < i27 < i30
        # cumulative across the numeric order
        assert 'le="1073741824"} 7' in text
        assert 'le="+Inf"} 7' in text


class TestCountersV2Shape:
    def test_key_order_and_schema(self, tmp_path):
        text = render_counters_v2(
            {"b_exp": {"x": 1}, "a_exp": {"y": 2}},
            {"exp.completed": 2},
            labels={"fidelity": "fast", "device": "A100"},
            context="tok")
        payload = json.loads(text)
        assert list(payload) == ["schema", "context", "labels",
                                 "experiments", "orchestration"]
        assert payload["schema"] == "hopperdissect.counters/v2"
        assert payload["context"] == "tok"
        assert list(payload["experiments"]) == ["a_exp", "b_exp"]
        assert list(payload["labels"]) == ["device", "fidelity"]
        path = tmp_path / "v2.json"
        path.write_text(text)
        assert load_counters_v2(path) == payload

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema":"hopperdissect.counters/v1"}\n')
        with pytest.raises(ValueError, match="expected schema"):
            load_counters_v2(path)

    def test_bucket_keys_numeric_order(self):
        text = render_counters_v2(
            {"e": {"lat.le1073741824": 2, "lat.le134217728": 1}},
            {}, context=None)
        bank = json.loads(text)["experiments"]["e"]
        assert list(bank) == ["lat.le134217728", "lat.le1073741824"]


names = st.text(
    alphabet=st.sampled_from("abcdefgh._"), min_size=1, max_size=12,
).filter(lambda s: not s.startswith(".") and ".." not in s)
banks_strategy = st.dictionaries(
    st.text(alphabet=st.sampled_from("abcxyz_"), min_size=1,
            max_size=8),
    st.dictionaries(names, st.integers(min_value=0, max_value=10**9),
                    max_size=6),
    min_size=0, max_size=4)


class TestLabeledMergeRoundTrip:
    @given(banks=banks_strategy)
    @settings(max_examples=60, deadline=None)
    def test_merge_then_render_round_trips(self, banks):
        """Worker deltas merged under experiment attribution come back
        out of the v2 document exactly — whatever the names, values
        and merge order."""
        session = ObsSession()
        for exp in sorted(banks, reverse=True):  # adversarial order
            session.merge({"counters": dict(banks[exp])},
                          experiment=exp)
        payload = json.loads(render_counters_v2(
            session.experiment_counters(),
            session.orchestration_counters()))
        expected = {exp: dict(bank)
                    for exp, bank in banks.items() if bank}
        assert {e: dict(b) for e, b in
                payload["experiments"].items()} == expected
        assert list(payload["experiments"]) == sorted(expected)
        assert payload["orchestration"] == {}

    @given(banks=banks_strategy, split=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_merge_grouping_is_invariant(self, banks, split):
        """Splitting one experiment's delta into several merges (what
        re-runs or resumed sessions do) changes nothing."""
        once = ObsSession()
        twice = ObsSession()
        for exp, bank in banks.items():
            once.merge({"counters": dict(bank)}, experiment=exp)
            items = sorted(bank.items())
            cut = split % (len(items) + 1)
            twice.merge({"counters": dict(items[:cut])},
                        experiment=exp)
            twice.merge({"counters": dict(items[cut:])},
                        experiment=exp)
        assert render_counters_v2(
            once.experiment_counters(),
            once.orchestration_counters()) == render_counters_v2(
            twice.experiment_counters(),
            twice.orchestration_counters())
