"""Tests for the result cache and the perf trajectory format."""

from __future__ import annotations

import pytest

from repro.core import run_experiment
from repro.perf import (
    Profiler,
    ResultCache,
    compare_bench,
    load_bench_json,
    write_bench_json,
)

EXP = "table03_devices"


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        assert cache.get(EXP) is None
        res = run_experiment(EXP)
        cache.put(EXP, res)
        got = cache.get(EXP)
        assert got is not None
        assert got.render() == res.render()
        assert got.experiment is res.experiment
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        cache.put(EXP, run_experiment(EXP))
        cache.path_for(EXP).write_bytes(b"not a pickle")
        assert cache.get(EXP) is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        cache.put(EXP, run_experiment(EXP))
        path = cache.path_for(EXP)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(EXP) is None

    def test_keys_separate_experiments(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        cache.put(EXP, run_experiment(EXP))
        assert cache.get("table06_sass") is None

    def test_default_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOPPERDISSECT_CACHE_DIR",
                           str(tmp_path / "from-env"))
        cache = ResultCache()
        cache.put(EXP, run_experiment(EXP))
        assert (tmp_path / "from-env").is_dir()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        cache.put(EXP, run_experiment(EXP))
        assert cache.clear() == 1
        assert cache.get(EXP) is None


def _profiler() -> Profiler:
    p = Profiler(jobs=2)
    p.add("exp_a", 0.5)
    p.add("exp_b", 0.001, cached=True)
    p.cache_hits, p.cache_misses = 1, 1
    return p


class TestBenchJson:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        write_bench_json(path, _profiler())
        data = load_bench_json(path)
        assert data["experiments"]["exp_a"]["wall_s"] == 0.5
        assert data["experiments"]["exp_b"]["cached"] is True
        assert data["jobs"] == 2

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="schema"):
            load_bench_json(path)

    def test_render_mentions_cache(self):
        out = _profiler().render()
        assert "exp_a" in out and "cache" in out
        assert "1 cached" in out


def _bench(walls, cached=()):
    return {
        "schema": 1,
        "experiments": {
            name: {"wall_s": w, "cached": name in cached}
            for name, w in walls.items()
        },
    }


class TestCompareBench:
    def test_no_regression(self):
        base = _bench({"a": 0.2, "b": 1.0})
        cur = _bench({"a": 0.3, "b": 1.5})
        assert compare_bench(base, cur) == []

    def test_regression_detected(self):
        base = _bench({"a": 0.2})
        cur = _bench({"a": 0.9})
        problems = compare_bench(base, cur, threshold=3.0)
        assert len(problems) == 1 and "a:" in problems[0]

    def test_floor_suppresses_noise(self):
        # 0.1ms -> 3ms is a 30x blowup but under the measurement floor
        base = _bench({"a": 0.0001})
        cur = _bench({"a": 0.003})
        assert compare_bench(base, cur, floor_s=0.05) == []

    def test_missing_experiment_reported(self):
        problems = compare_bench(_bench({"a": 0.2, "b": 0.2}),
                                 _bench({"a": 0.2}))
        assert problems == ["b: missing from current run"]

    def test_cached_timings_skipped(self):
        base = _bench({"a": 0.2})
        cur = _bench({"a": 5.0}, cached={"a"})
        assert compare_bench(base, cur) == []


class TestDependencyCutKeys:
    """The cache invalidates on the builder's transitive imports, not
    the whole tree."""

    def _edit(self, monkeypatch, module_path_suffix):
        """Make _read_source see one module's source as edited."""
        from repro.perf import cache as cmod

        real = cmod._read_source

        def patched(path):
            data = real(path)
            if str(path).endswith(module_path_suffix):
                return data + b"\n# edited\n"
            return data

        monkeypatch.setattr(cmod, "_read_source", patched)

    def test_te_edit_keeps_memory_experiments_warm(self, tmp_path,
                                                   monkeypatch):
        from repro.perf import ResultCache

        cache = ResultCache(tmp_path / "rc")
        cache.put("table04_mem_latency",
                  run_experiment("table04_mem_latency"))
        cache.put("fig04_te_linear", run_experiment("fig04_te_linear"))

        self._edit(monkeypatch, "te/modules.py")
        warm = ResultCache(tmp_path / "rc")
        assert warm.get("table04_mem_latency") is not None
        assert warm.get("fig04_te_linear") is None

    def test_memory_edit_invalidates_memory_experiments(self, tmp_path,
                                                        monkeypatch):
        from repro.perf import ResultCache

        cache = ResultCache(tmp_path / "rc")
        cache.put("table04_mem_latency",
                  run_experiment("table04_mem_latency"))
        self._edit(monkeypatch, "memory/hierarchy.py")
        warm = ResultCache(tmp_path / "rc")
        assert warm.get("table04_mem_latency") is None

    def test_cut_contents(self):
        from repro.perf import dependency_cut

        cut = dependency_cut("repro.core.experiments.memory")
        assert "repro.core.experiments.memory" in cut
        assert "repro.memory.hierarchy" in cut      # transitive
        assert "repro.te.modules" not in cut        # unrelated
        assert not any(m.startswith("repro.perf") for m in cut)
        assert "repro.core" not in cut              # no hub gluing

    def test_function_level_imports_are_tracked(self):
        # extensions.py imports repro.te inside builder bodies only
        from repro.perf import dependency_cut

        cut = dependency_cut("repro.core.experiments.extensions")
        assert any(m.startswith("repro.te") for m in cut)


class TestContextKeys:
    """The same experiment under different contexts coexists."""

    def test_contexts_do_not_collide(self, tmp_path):
        from repro.core import RunContext
        from repro.perf import ResultCache

        ctx = RunContext(devices=("A100",))
        cache = ResultCache(tmp_path / "rc")
        default_res = run_experiment(EXP)
        sweep_res = run_experiment(EXP, ctx)
        cache.put(EXP, default_res)
        cache.put(EXP, sweep_res, ctx)

        assert cache.path_for(EXP) != cache.path_for(EXP, ctx)
        got_default = cache.get(EXP)
        got_sweep = cache.get(EXP, ctx)
        assert got_default.render() == default_res.render()
        assert got_sweep.render() == sweep_res.render()
        assert got_sweep.context == ctx

    def test_seed_changes_the_key(self, tmp_path):
        from repro.core import RunContext
        from repro.perf import ResultCache

        cache = ResultCache(tmp_path / "rc")
        assert cache.key_for(EXP) != \
            cache.key_for(EXP, RunContext(seed=1))


class TestBenchHistory:
    def test_append_and_latest(self, tmp_path):
        from repro.perf import (
            append_bench_history,
            latest_bench_entry,
            load_bench_history,
        )

        path = tmp_path / "BENCH_perf_history.jsonl"
        append_bench_history(path, _profiler(), timestamp=100.0,
                             label="first")
        append_bench_history(path, _profiler(), timestamp=200.0)
        entries = load_bench_history(path)
        assert len(entries) == 2
        assert entries[0]["label"] == "first"
        latest = latest_bench_entry(path)
        assert latest["timestamp"] == 200.0
        assert latest["experiments"]["exp_a"]["wall_s"] == 0.5

    def test_wrong_schema_line_rejected(self, tmp_path):
        from repro.perf import load_bench_history

        path = tmp_path / "h.jsonl"
        path.write_text('{"schema": 99}\n')
        with pytest.raises(ValueError, match="schema"):
            load_bench_history(path)

    def test_empty_archive_rejected(self, tmp_path):
        from repro.perf import latest_bench_entry

        path = tmp_path / "h.jsonl"
        path.write_text("\n")
        with pytest.raises(ValueError, match="empty"):
            latest_bench_entry(path)

    def test_regression_gate_reads_jsonl(self, tmp_path):
        import subprocess
        import sys

        from repro.perf import append_bench_history

        path = tmp_path / "hist.jsonl"
        append_bench_history(path, _profiler(), timestamp=1.0)
        out = subprocess.run(
            [sys.executable, "benchmarks/check_perf_regression.py",
             str(path), str(path)],
            capture_output=True, text=True,
        )
        assert out.returncode == 0, out.stderr
        assert "no perf regressions" in out.stdout
