"""Tests for the result cache and the perf trajectory format."""

from __future__ import annotations

import pytest

from repro.core import run_experiment
from repro.perf import (
    Profiler,
    ResultCache,
    compare_bench,
    load_bench_json,
    write_bench_json,
)

EXP = "table03_devices"


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        assert cache.get(EXP) is None
        res = run_experiment(EXP)
        cache.put(EXP, res)
        got = cache.get(EXP)
        assert got is not None
        assert got.render() == res.render()
        assert got.experiment is res.experiment
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        cache.put(EXP, run_experiment(EXP))
        cache.path_for(EXP).write_bytes(b"not a pickle")
        assert cache.get(EXP) is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        cache.put(EXP, run_experiment(EXP))
        path = cache.path_for(EXP)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(EXP) is None

    def test_keys_separate_experiments(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        cache.put(EXP, run_experiment(EXP))
        assert cache.get("table06_sass") is None

    def test_default_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOPPERDISSECT_CACHE_DIR",
                           str(tmp_path / "from-env"))
        cache = ResultCache()
        cache.put(EXP, run_experiment(EXP))
        assert (tmp_path / "from-env").is_dir()

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        cache.put(EXP, run_experiment(EXP))
        assert cache.clear() == 1
        assert cache.get(EXP) is None


def _profiler() -> Profiler:
    p = Profiler(jobs=2)
    p.add("exp_a", 0.5)
    p.add("exp_b", 0.001, cached=True)
    p.cache_hits, p.cache_misses = 1, 1
    return p


class TestBenchJson:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        write_bench_json(path, _profiler())
        data = load_bench_json(path)
        assert data["experiments"]["exp_a"]["wall_s"] == 0.5
        assert data["experiments"]["exp_b"]["cached"] is True
        assert data["jobs"] == 2

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="schema"):
            load_bench_json(path)

    def test_render_mentions_cache(self):
        out = _profiler().render()
        assert "exp_a" in out and "cache" in out
        assert "1 cached" in out


def _bench(walls, cached=()):
    return {
        "schema": 1,
        "experiments": {
            name: {"wall_s": w, "cached": name in cached}
            for name, w in walls.items()
        },
    }


class TestCompareBench:
    def test_no_regression(self):
        base = _bench({"a": 0.2, "b": 1.0})
        cur = _bench({"a": 0.3, "b": 1.5})
        assert compare_bench(base, cur) == []

    def test_regression_detected(self):
        base = _bench({"a": 0.2})
        cur = _bench({"a": 0.9})
        problems = compare_bench(base, cur, threshold=3.0)
        assert len(problems) == 1 and "a:" in problems[0]

    def test_floor_suppresses_noise(self):
        # 0.1ms -> 3ms is a 30x blowup but under the measurement floor
        base = _bench({"a": 0.0001})
        cur = _bench({"a": 0.003})
        assert compare_bench(base, cur, floor_s=0.05) == []

    def test_missing_experiment_reported(self):
        problems = compare_bench(_bench({"a": 0.2, "b": 0.2}),
                                 _bench({"a": 0.2}))
        assert problems == ["b: missing from current run"]

    def test_cached_timings_skipped(self):
        base = _bench({"a": 0.2})
        cur = _bench({"a": 5.0}, cached={"a"})
        assert compare_bench(base, cur) == []
