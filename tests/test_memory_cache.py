"""Tests for the sectored set-associative cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import SetAssociativeCache


def small_cache(**kw):
    defaults = dict(size_bytes=4096, line_bytes=128, sector_bytes=32,
                    ways=4, name="test")
    defaults.update(kw)
    return SetAssociativeCache(**defaults)


class TestGeometry:
    def test_basic_derivation(self):
        c = small_cache()
        assert c.num_sets == 4096 // 128 // 4
        assert c.sectors_per_line == 4

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            small_cache(size_bytes=1000)       # not line multiple
        with pytest.raises(ValueError):
            small_cache(line_bytes=100)        # not sector multiple
        with pytest.raises(ValueError):
            small_cache(size_bytes=128 * 3, ways=2)  # lines % ways


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not c.access(0)
        assert c.access(0)
        assert c.stats.tag_misses == 1
        assert c.stats.hits == 1

    def test_sector_granularity(self):
        c = small_cache()
        c.access(0)            # fills sector 0 of line 0
        assert not c.access(32)   # sector 1 of the SAME line: sector miss
        assert c.stats.sector_misses == 1
        assert c.access(0) and c.access(32)

    def test_same_sector_different_bytes_hit(self):
        c = small_cache()
        c.access(0)
        assert c.access(28)   # same 32-byte sector (bytes 28..31)

    def test_multi_sector_access(self):
        c = small_cache()
        assert not c.access(0, size=64)      # spans 2 sectors
        assert c.access(0, size=64)
        assert c.access(32)

    def test_probe_is_non_destructive(self):
        c = small_cache()
        assert not c.probe(0)
        before = c.stats.accesses
        c.probe(0)
        assert c.stats.accesses == before
        assert not c.access(0)  # still a miss — probe didn't fill

    def test_no_allocate(self):
        c = small_cache()
        c.access(0, allocate=False)
        assert not c.probe(0)


class TestLru:
    def test_eviction_order(self):
        c = small_cache()  # 8 sets, 4 ways
        set_stride = c.num_sets * c.line_bytes  # same-set addresses
        addrs = [i * set_stride for i in range(5)]
        for a in addrs[:4]:
            c.access(a)
        c.access(addrs[0])      # refresh line 0
        c.access(addrs[4])      # evicts LRU = line 1
        assert c.probe(addrs[0])
        assert not c.probe(addrs[1])
        assert c.probe(addrs[4])
        assert c.stats.evictions == 1

    def test_capacity_thrash(self):
        c = small_cache()
        lines = c.size_bytes // c.line_bytes
        # touch 2× capacity sequentially, twice: second pass all misses
        for _ in range(2):
            for i in range(2 * lines):
                c.access(i * c.line_bytes)
        # after warmup the second pass should have been all misses (LRU)
        assert c.stats.hit_rate < 0.01

    def test_within_capacity_all_hits_after_warm(self):
        c = small_cache()
        lines = c.size_bytes // c.line_bytes
        for i in range(lines):
            c.access(i * c.line_bytes)
        c.stats.reset()
        for i in range(lines):
            assert c.access(i * c.line_bytes)
        assert c.stats.hit_rate == 1.0


class TestWarmFlush:
    def test_warm_fills_range(self):
        c = small_cache()
        c.warm(0, 1024)
        assert all(c.probe(a) for a in range(0, 1024, 32))

    def test_flush(self):
        c = small_cache()
        c.warm(0, 512)
        c.flush()
        assert not c.probe(0)
        assert c.stats.accesses == 0

    def test_resident_bytes(self):
        c = small_cache()
        assert c.resident_bytes == 0
        c.access(0)
        assert c.resident_bytes == 32
        c.warm(0, 1024)
        assert c.resident_bytes == 1024


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=200))
    def test_resident_never_exceeds_capacity(self, addrs):
        c = small_cache()
        for a in addrs:
            c.access(a)
        assert c.resident_bytes <= c.size_bytes

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16),
                    min_size=1, max_size=100))
    def test_repeat_access_hits(self, addrs):
        c = SetAssociativeCache(1 << 16, ways=16)
        for a in addrs:
            c.access(a)
        # working set fits: immediate re-access of the last address hits
        assert c.access(addrs[-1])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 22),
                    min_size=1, max_size=100))
    def test_stats_consistency(self, addrs):
        c = small_cache()
        for a in addrs:
            c.access(a)
        s = c.stats
        assert s.accesses == len(addrs)
        assert s.hits + len(
            [1 for _ in range(0)]) <= s.accesses  # hits bounded
        assert s.hits <= s.accesses
        assert s.misses >= 0


def _state_fingerprint(cache, addrs):
    """Observable state: probes over every touched sector + occupancy."""
    probes = tuple(cache.probe(a) for a in addrs)
    return probes, cache.resident_bytes


class TestScalarEquivalence:
    """The vectorized cache is access-for-access identical to the
    preserved scalar reference implementation."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 14),  # addr
                st.integers(min_value=1, max_value=200),      # size
                st.booleans(),                                # write
                st.booleans(),                                # allocate
            ),
            min_size=1, max_size=120,
        )
    )
    def test_access_stream_equivalence(self, stream):
        from repro.memory import ScalarSetAssociativeCache

        vec = small_cache()
        ref = ScalarSetAssociativeCache(
            4096, line_bytes=128, sector_bytes=32, ways=4, name="ref")
        for addr, size, write, allocate in stream:
            assert vec.access(addr, size, write=write,
                              allocate=allocate) == \
                ref.access(addr, size, write=write, allocate=allocate)
        assert vec.stats == ref.stats
        touched = [a for a, *_ in stream]
        assert _state_fingerprint(vec, touched) == \
            _state_fingerprint(ref, touched)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1 << 14),
                 min_size=1, max_size=150),
        st.integers(min_value=1, max_value=64),
        st.booleans(),
    )
    def test_access_many_matches_sequential(self, addrs, size, allocate):
        import numpy as np

        batched = small_cache()
        seq = small_cache()
        got = batched.access_many(np.array(addrs, dtype=np.int64),
                                  size, allocate=allocate)
        want = [seq.access(a, size, allocate=allocate) for a in addrs]
        assert got.tolist() == want
        assert batched.stats == seq.stats
        assert _state_fingerprint(batched, addrs) == \
            _state_fingerprint(seq, addrs)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 12),
           st.integers(min_value=1, max_value=64))
    def test_warm_bulk_path_equivalence(self, base, n_sectors):
        """The ascending single-sector stream (the warm/init-pass
        shape) takes the closed-form bulk path; the scalar model is
        the ground truth for it."""
        from repro.memory import ScalarSetAssociativeCache

        base = (base // 32) * 32
        size = n_sectors * 32
        vec = small_cache()
        ref = ScalarSetAssociativeCache(
            4096, line_bytes=128, sector_bytes=32, ways=4, name="ref")
        vec.warm(base, size, record=True)
        ref.warm(base, size)
        assert vec.stats == ref.stats
        touched = list(range(base, base + size, 32))
        assert _state_fingerprint(vec, touched) == \
            _state_fingerprint(ref, touched)

    def test_warm_record_false_leaves_stats_clean(self):
        c = small_cache()
        c.warm(0, 1024)
        assert c.stats.accesses == 0 and c.stats.misses == 0
        assert all(c.probe(a) for a in range(0, 1024, 32))
        # ... while the recorded variant counts every access
        c2 = small_cache()
        c2.warm(0, 1024, record=True)
        assert c2.stats.accesses == 1024 // 32
        assert c2.resident_bytes == c.resident_bytes

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 12),
           st.integers(min_value=33, max_value=200))
    def test_warm_overflow_equivalence(self, base, n_sectors):
        """Warms spanning more lines than sets (the closed form's grid
        regime, where LRU keeps only the tail of each set) leave
        *exactly* the state the scalar model leaves — including the
        recency stamps later evictions decide on."""
        from repro.memory import ScalarSetAssociativeCache

        base = (base // 32) * 32
        size = n_sectors * 32
        vec = small_cache()
        ref = ScalarSetAssociativeCache(
            4096, line_bytes=128, sector_bytes=32, ways=4, name="ref")
        vec.warm(base, size, record=True)
        ref.warm(base, size)
        assert vec.stats == ref.stats
        touched = list(range(base, base + size, 32))
        assert _state_fingerprint(vec, touched) == \
            _state_fingerprint(ref, touched)
        # follow-up conflict accesses exercise the warmed LRU state
        for i in range(40):
            a = (base + i * 1024 + 32 * (i % 4)) % (1 << 14)
            assert vec.access(a) == ref.access(a), (i, a)
        assert vec.stats == ref.stats

    def test_bulk_then_scalar_sequence(self):
        """A bulk fill may defer index bookkeeping; scalar accesses
        right after it must still behave exactly like a cache that
        took every access one at a time."""
        import numpy as np

        bulk = small_cache()
        bulk.access_many(np.arange(0, 2048, 32, dtype=np.int64))
        seq = small_cache()
        for a in range(0, 2048, 32):
            seq.access(a)
        for a in (0, 64, 4096, 96, 8192, 0):
            assert bulk.access(a) == seq.access(a), a
        assert bulk.stats == seq.stats


class TestAllocationRetention:
    """``flush()`` empties the cache without discarding grown
    matrices; a flushed cache must be observationally identical to a
    brand-new one."""

    def test_flush_behaves_like_fresh(self):
        used = small_cache()
        for a in range(0, 1 << 14, 96):
            used.access(a, 64)
        used.flush()
        assert used.resident_bytes == 0
        assert used.stats.accesses == 0
        fresh = small_cache()
        stream = [(a * 37) % (1 << 14) for a in range(300)]
        for a in stream:
            assert used.access(a) == fresh.access(a), a
        assert used.stats == fresh.stats
        assert _state_fingerprint(used, stream) == \
            _state_fingerprint(fresh, stream)

    def test_flushed_warm_matches_fresh_warm(self):
        used = small_cache()
        used.warm(0, 4096)
        used.flush()
        fresh = small_cache()
        used.warm(64, 2048, record=True)
        fresh.warm(64, 2048, record=True)
        assert used.stats == fresh.stats
        touched = list(range(64, 64 + 2048, 32))
        assert _state_fingerprint(used, touched) == \
            _state_fingerprint(fresh, touched)

    def test_reserve_span_is_behaviour_neutral(self):
        plain = small_cache()
        sized = small_cache()
        sized.reserve_span(1 << 20)   # clamps at the geometry
        sized.reserve_span(0)         # no-op
        stream = [(a * 13) % (1 << 13) for a in range(200)]
        for addr in stream:
            assert plain.access(addr) == sized.access(addr)
        assert plain.stats == sized.stats
        assert _state_fingerprint(plain, stream) == \
            _state_fingerprint(sized, stream)


class TestPrefixGrowth:
    """Set matrices start small and grow on demand; behaviour must
    not depend on when (or whether) growth happens."""

    def test_high_set_then_low_set(self):
        # 4096 sets — well beyond the initial allocation
        c = SetAssociativeCache(1 << 20, line_bytes=128,
                                sector_bytes=32, ways=2, name="big")
        hi = 4000 * 128
        assert not c.access(hi)
        assert c.access(hi)
        assert not c.access(0)
        assert c.access(0)
        assert c.resident_bytes == 64

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 22),
                    min_size=1, max_size=80))
    def test_large_cache_matches_scalar_reference(self, addrs):
        from repro.memory import ScalarSetAssociativeCache

        vec = SetAssociativeCache(1 << 20, line_bytes=128,
                                  sector_bytes=32, ways=2, name="big")
        ref = ScalarSetAssociativeCache(
            1 << 20, line_bytes=128, sector_bytes=32, ways=2,
            name="ref")
        for a in addrs:
            assert vec.access(a) == ref.access(a)
        assert vec.stats == ref.stats
        assert _state_fingerprint(vec, addrs) == \
            _state_fingerprint(ref, addrs)
