"""Device sweeps: every experiment stays well-formed — and its
findings keep passing — under single-device contexts, and the default
context reproduces the legacy three-device layout.

The sweep list comes from the device registry, so the lineage packs
(V100, B200) are exercised alongside the paper's testbed without this
file naming them."""

from __future__ import annotations

import pickle

import pytest

from repro.arch import list_devices
from repro.core import (
    Check,
    RunContext,
    Table,
    run_all,
    run_experiment,
    supported_experiments,
)

SWEEPS = [(name,) for name in list_devices()]


@pytest.fixture(scope="module")
def sweep_results():
    """run_all under each single-device context, computed once."""
    out = {}
    for devices in SWEEPS:
        ctx = RunContext(devices=devices)
        out[devices] = (ctx, run_all(context=ctx))
    return out


class TestSingleDeviceSweeps:
    @pytest.mark.parametrize("devices", SWEEPS,
                             ids=[d[0] for d in SWEEPS])
    def test_tables_and_checks_are_well_formed(self, devices,
                                               sweep_results):
        ctx, results = sweep_results[devices]
        assert results, "no experiments supported?"
        for name, res in results.items():
            assert isinstance(res.table, Table), name
            assert res.table.columns, name
            assert len(res.table) > 0, f"{name}: empty table"
            for row in res.table.rows:
                assert len(row) == len(res.table.columns), name
            for c in res.checks:
                assert isinstance(c, Check), name
            assert res.context == ctx

    @pytest.mark.parametrize("devices", SWEEPS,
                             ids=[d[0] for d in SWEEPS])
    def test_findings_pass_under_restricted_sweeps(self, devices,
                                                   sweep_results):
        _, results = sweep_results[devices]
        failing = [f"{name}: {c.description}"
                   for name, res in results.items()
                   for c in res.checks if not c.passed]
        assert not failing, failing

    @pytest.mark.parametrize("devices", SWEEPS,
                             ids=[d[0] for d in SWEEPS])
    def test_only_supported_experiments_ran(self, devices,
                                            sweep_results):
        ctx, results = sweep_results[devices]
        assert sorted(results) == supported_experiments(ctx)

    def test_pinned_artifacts_only_under_their_device(self,
                                                     sweep_results):
        _, h800 = sweep_results[("H800",)]
        _, a100 = sweep_results[("A100",)]
        assert "fig08_dsm_rbc" in h800 and "fig08_dsm_rbc" not in a100
        assert "table14_async_a100" in a100 and \
            "table14_async_a100" not in h800

    def test_sweep_tables_only_mention_context_devices(self,
                                                       sweep_results):
        _, results = sweep_results[("A100",)]
        t = results["table04_mem_latency"].table
        assert t.columns == ["Type", "A100"]

    def test_seed_reaches_seeded_workloads(self):
        base = run_experiment("ext_fp8_accuracy", RunContext(seed=0))
        same = run_experiment("ext_fp8_accuracy", RunContext(seed=0))
        other = run_experiment("ext_fp8_accuracy",
                               RunContext(seed=123))
        assert base.table == same.table
        # different random activations -> different measured errors
        assert base.table != other.table


class TestDefaultContextCompatibility:
    def test_default_matches_no_context_run(self):
        a = run_experiment("table05_mem_throughput")
        b = run_experiment("table05_mem_throughput",
                           RunContext())
        assert a.render() == b.render()

    def test_paper_column_orders_preserved(self):
        t3 = run_experiment("table03_devices").table
        assert t3.columns == ["Property", "A100 PCIe", "RTX4090",
                              "H800 PCIe"]
        t4 = run_experiment("table04_mem_latency").table
        assert t4.columns == ["Type", "RTX4090", "A100", "H800"]


class TestColumnarTable:
    def test_row_views_and_len(self):
        t = Table("t", ["a", "b"])
        t.add_row(1, "x")
        t.add_row(2, "y")
        assert len(t) == 2
        assert list(t.rows) == [[1, "x"], [2, "y"]]
        assert t.rows[-1] == [2, "y"]
        assert t.rows[0:1] == [[1, "x"]]
        assert t.cell(1, "a") == 2
        assert t.column("b") == ["x", "y"]

    def test_pickle_roundtrip_preserves_exact_types(self):
        t = Table("t", ["i", "f", "m"])
        t.add_row(12, 12.0, "s")
        t.add_row(-3, 0.5, 7)       # mixed column stays a list
        u = pickle.loads(pickle.dumps(t))
        assert u == t
        assert type(u.cell(0, "i")) is int
        assert type(u.cell(0, "f")) is float
        assert u.render() == t.render()

    def test_pickle_is_compact_for_numeric_columns(self):
        big = Table("big", ["x"])
        small = Table("small", ["x"])
        for i in range(4096):
            big.add_row(float(i))
        small.add_row(0.0)
        per_row = (len(pickle.dumps(big)) - len(pickle.dumps(small))) \
            / 4095
        # a packed float64 column costs ~8 bytes/row; the old
        # row-of-python-floats layout cost several dozen
        assert per_row < 12, per_row

    def test_rows_equality_supports_determinism_checks(self):
        t = Table("t", ["a"])
        t.add_row(1.5)
        u = pickle.loads(pickle.dumps(t))
        assert t.rows == u.rows
        assert t.rows == [[1.5]]
