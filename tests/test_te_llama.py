"""Tests for the functional TinyLlama decoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.te import fp8_autocast
from repro.te.llama import TinyLlama, TinyLlamaConfig


@pytest.fixture(scope="module")
def model():
    return TinyLlama(TinyLlamaConfig(vocab_size=64, hidden=32,
                                     layers=2, heads=4,
                                     ffn_hidden=64, max_seq=32),
                     seed=0)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TinyLlamaConfig(hidden=30, heads=4)
        with pytest.raises(ValueError):
            TinyLlamaConfig(layers=0)

    def test_param_count_positive(self):
        assert TinyLlamaConfig().params > 10_000


class TestForward:
    def test_logit_shape(self, model):
        logits = model.forward(np.array([[1, 2, 3]]))
        assert logits.shape == (1, 3, 64)
        assert np.all(np.isfinite(logits))

    def test_causality(self, model):
        """Changing a future token must not change earlier logits."""
        a = np.array([[1, 2, 3, 4]])
        b = np.array([[1, 2, 3, 60]])
        la = model.forward(a)
        lb = model.forward(b)
        assert np.allclose(la[:, :3], lb[:, :3])
        assert not np.allclose(la[:, 3], lb[:, 3])

    def test_distribution_normalized(self, model):
        p = model.next_token_distribution(np.array([[5, 6]]))
        assert p.shape == (1, 64)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_input_validation(self, model):
        with pytest.raises(ValueError, match="vocabulary"):
            model.forward(np.array([[999]]))
        with pytest.raises(ValueError, match="max_seq"):
            model.forward(np.ones((1, 64), dtype=int))

    def test_batched_forward(self, model):
        logits = model.forward(np.array([[1, 2], [3, 4]]))
        assert logits.shape == (2, 2, 64)
        # batch entries are independent
        solo = model.forward(np.array([[3, 4]]))
        assert np.allclose(logits[1], solo[0])


class TestGeneration:
    def test_greedy_deterministic(self, model):
        a = model.generate([1, 2, 3], 8)
        b = model.generate([1, 2, 3], 8)
        assert a == b
        assert len(a) == 11
        assert a[:3] == [1, 2, 3]

    def test_sampled_with_seed(self, model):
        a = model.generate([1], 6, seed=42)
        b = model.generate([1], 6, seed=42)
        c = model.generate([1], 6, seed=43)
        assert a == b
        assert a != c

    def test_zero_new_tokens(self, model):
        assert model.generate([7, 8], 0) == [7, 8]
        with pytest.raises(ValueError):
            model.generate([7], -1)

    def test_fp8_generation_runs_and_differs_slightly(self, model):
        fp16_out = model.generate([1, 2, 3, 4], 12)
        with fp8_autocast():
            fp8_out = model.generate([1, 2, 3, 4], 12)
        assert len(fp8_out) == len(fp16_out)
        # FP8 numerics may flip late greedy choices but the first
        # steps (largest logit margins) should agree
        assert fp8_out[:6] == fp16_out[:6]


class TestLikelihood:
    def test_loglik_negative_and_finite(self, model):
        ll = model.log_likelihood([1, 2, 3, 4, 5])
        assert np.isfinite(ll)
        assert ll < 0

    def test_greedy_continuation_more_likely(self, model):
        prompt = [1, 2, 3]
        greedy = model.generate(prompt, 4)
        rng = np.random.default_rng(0)
        random_cont = prompt + rng.integers(0, 64, 4).tolist()
        assert model.log_likelihood(greedy) \
            >= model.log_likelihood(random_cont)

    def test_needs_two_tokens(self, model):
        with pytest.raises(ValueError):
            model.log_likelihood([1])
