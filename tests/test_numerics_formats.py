"""Tests for the generic floating-point codec."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics import (
    BF16, E4M3, E5M2, FP16, FP32, FP64, TF32, FloatFormat, get_format,
)

ALL_FORMATS = [FP16, BF16, TF32, E4M3, E5M2]
BITCODEC_FORMATS = [FP16, BF16, E4M3, E5M2]


class TestFormatConstants:
    """The published constants of each format."""

    def test_fp16(self):
        assert FP16.max_finite == 65504.0
        assert FP16.min_normal == pytest.approx(6.103515625e-05)
        assert FP16.min_subnormal == pytest.approx(5.960464477539063e-08)
        assert FP16.machine_epsilon == 2 ** -10

    def test_bf16(self):
        assert BF16.max_finite == pytest.approx(3.3895313892515355e38)
        assert BF16.emax == 127
        assert BF16.machine_epsilon == 2 ** -7

    def test_tf32(self):
        # TF32: FP32 range, 10 explicit mantissa bits, 32-bit storage
        assert TF32.emax == 127
        assert TF32.machine_epsilon == 2 ** -10
        assert TF32.storage_bits == 32
        assert TF32.storage_bytes == 4.0

    def test_e4m3(self):
        # OCP FP8 E4M3: no infinities, max finite 448
        assert E4M3.max_finite == 448.0
        assert E4M3.min_normal == 2 ** -6
        assert E4M3.min_subnormal == 2 ** -9
        assert not E4M3.has_inf
        assert E4M3.saturate_on_overflow

    def test_e5m2(self):
        # OCP FP8 E5M2: IEEE-style, max finite 57344
        assert E5M2.max_finite == 57344.0
        assert E5M2.min_normal == 2 ** -14
        assert E5M2.min_subnormal == 2 ** -16
        assert E5M2.has_inf

    def test_fp32_fp64_reference(self):
        assert FP32.max_finite == pytest.approx(3.4028234663852886e38)
        assert FP64.machine_epsilon == 2 ** -52

    def test_storage_defaults(self):
        assert FP16.storage_bits == 16
        assert E4M3.storage_bits == 8
        assert E5M2.storage_bits == 8

    def test_get_format_aliases(self):
        assert get_format("fp8") is E4M3
        assert get_format("FP16") is FP16
        assert get_format("fp8_e5m2") is E5M2
        with pytest.raises(KeyError):
            get_format("fp12")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FloatFormat("bad", exp_bits=1, man_bits=4)
        with pytest.raises(ValueError):
            FloatFormat("bad", exp_bits=5, man_bits=60)


class TestQuantize:
    def test_exact_values_unchanged(self):
        for f in ALL_FORMATS:
            for v in (0.0, 1.0, -2.0, 0.5, f.max_finite, f.min_normal,
                      f.min_subnormal):
                assert float(f.quantize(v)) == v, (f.name, v)

    def test_round_to_nearest_even(self):
        # FP16 ulp at 1.0 is 2^-10; halfway points round to even
        ulp = 2 ** -10
        assert float(FP16.quantize(1.0 + ulp / 2)) == 1.0       # down
        assert float(FP16.quantize(1.0 + 3 * ulp / 2)) == 1.0 + 2 * ulp

    def test_overflow_to_inf(self):
        assert math.isinf(float(FP16.quantize(70000.0)))
        assert math.isinf(float(E5M2.quantize(1e6)))
        assert float(FP16.quantize(-70000.0)) == -math.inf

    def test_e4m3_saturates(self):
        assert float(E4M3.quantize(1e6)) == 448.0
        assert float(E4M3.quantize(-1e6)) == -448.0
        assert float(E4M3.quantize(math.inf)) == 448.0

    def test_fp16_boundary_rounding(self):
        # 65519.99 rounds to 65504 (max), 65520 rounds to 65536 → inf
        assert float(FP16.quantize(65519.0)) == 65504.0
        assert math.isinf(float(FP16.quantize(65520.0)))

    def test_underflow_to_zero(self):
        for f in ALL_FORMATS:
            tiny = f.min_subnormal / 4
            assert float(f.quantize(tiny)) == 0.0

    def test_subnormal_quantization(self):
        # halfway between 0 and min_subnormal rounds to even (0)
        v = FP16.min_subnormal * 1.5
        q = float(FP16.quantize(v))
        assert q in (FP16.min_subnormal, 2 * FP16.min_subnormal)
        assert float(FP16.quantize(FP16.min_subnormal * 3)) == \
            FP16.min_subnormal * 3

    def test_nan_passthrough(self):
        assert math.isnan(float(FP16.quantize(float("nan"))))
        assert math.isnan(float(E4M3.quantize(float("nan"))))

    def test_e4m3_infinity_input(self):
        # E4M3 has no inf; saturating format clamps it
        assert float(E4M3.quantize(math.inf)) == 448.0

    def test_array_quantization(self):
        x = np.array([1.0, 1.0005, 65519.0, 1e-9, -3.14159])
        q = FP16.quantize(x)
        assert q.shape == x.shape
        assert q[0] == 1.0
        assert q[3] == 0.0

    def test_tf32_truncates_fp32_mantissa(self):
        # a value needing >10 mantissa bits moves under TF32
        v = 1.0 + 2 ** -13
        assert float(TF32.quantize(v)) != v
        assert float(FP32.quantize(v)) == v

    def test_representable(self):
        assert FP16.representable(1.0)
        assert not FP16.representable(1.0 + 2 ** -13)
        assert FP16.representable(float("nan"))
        assert FP16.representable(float("inf"))
        assert not E4M3.representable(449.0)

    def test_ulp(self):
        assert FP16.ulp(1.0) == 2 ** -10
        assert FP16.ulp(2.0) == 2 ** -9
        assert FP16.ulp(0.0) == FP16.min_subnormal
        assert FP16.ulp(-4.0) == FP16.ulp(4.0)


class TestQuantizeProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.floats(allow_nan=False, allow_infinity=False,
                     width=64, min_value=-1e30, max_value=1e30),
           st.sampled_from(ALL_FORMATS))
    def test_idempotent(self, x, fmt):
        once = float(fmt.quantize(x))
        twice = float(fmt.quantize(once))
        assert once == twice or (math.isnan(once) and math.isnan(twice))

    @settings(max_examples=200, deadline=None)
    @given(st.floats(allow_nan=False, allow_infinity=False,
                     min_value=-1e4, max_value=1e4),
           st.sampled_from(ALL_FORMATS))
    def test_error_within_half_ulp(self, x, fmt):
        q = float(fmt.quantize(x))
        if math.isinf(q):
            return
        if abs(x) > fmt.max_finite:      # saturated
            assert abs(q) == fmt.max_finite
            return
        assert abs(q - x) <= fmt.ulp(x) / 2 * (1 + 1e-12)

    @settings(max_examples=200, deadline=None)
    @given(st.floats(min_value=-1e4, max_value=1e4,
                     allow_nan=False),
           st.floats(min_value=-1e4, max_value=1e4,
                     allow_nan=False),
           st.sampled_from(ALL_FORMATS))
    def test_monotone(self, a, b, fmt):
        lo, hi = sorted((a, b))
        assert float(fmt.quantize(lo)) <= float(fmt.quantize(hi))

    @settings(max_examples=200, deadline=None)
    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
           st.sampled_from(ALL_FORMATS))
    def test_sign_symmetry(self, x, fmt):
        assert float(fmt.quantize(-x)) == -float(fmt.quantize(x))


class TestBitCodec:
    @pytest.mark.parametrize("fmt", BITCODEC_FORMATS,
                             ids=lambda f: f.name)
    def test_known_patterns_fp_one(self, fmt):
        one = fmt.to_bits(1.0)
        # 1.0 encodes as bias << man_bits
        assert int(one) == fmt.bias << fmt.man_bits
        assert float(fmt.from_bits(one)) == 1.0

    def test_fp16_reference_patterns(self):
        assert int(FP16.to_bits(1.0)) == 0x3C00
        assert int(FP16.to_bits(-2.0)) == 0xC000
        assert int(FP16.to_bits(65504.0)) == 0x7BFF
        assert int(FP16.to_bits(float("inf"))) == 0x7C00
        assert int(FP16.to_bits(0.0)) == 0x0000

    def test_e4m3_reference_patterns(self):
        # 448 = S.1111.110
        assert int(E4M3.to_bits(448.0)) == 0b0_1111_110
        assert math.isnan(float(E4M3.from_bits(0b0_1111_111)))

    @pytest.mark.parametrize("fmt", BITCODEC_FORMATS,
                             ids=lambda f: f.name)
    def test_exhaustive_roundtrip_small_formats(self, fmt):
        if fmt.storage_bits > 8:
            pytest.skip("exhaustive only for 8-bit formats")
        for bits in range(256):
            v = float(fmt.from_bits(bits))
            if math.isnan(v):
                continue
            back = int(fmt.to_bits(v))
            assert back == bits, (bits, v, back)

    @settings(max_examples=300, deadline=None)
    @given(st.floats(min_value=-60000, max_value=60000,
                     allow_nan=False),
           st.sampled_from(BITCODEC_FORMATS))
    def test_value_bits_value_roundtrip(self, x, fmt):
        q = float(fmt.quantize(x))
        if math.isnan(q) or math.isinf(q):
            return
        assert float(fmt.from_bits(fmt.to_bits(q))) == q

    def test_large_format_bitcodec_unsupported(self):
        with pytest.raises(NotImplementedError):
            TF32.to_bits(1.0)
        with pytest.raises(NotImplementedError):
            FP32.from_bits(0)
