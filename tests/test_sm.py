"""Tests for occupancy, block scheduling and the issue pipeline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sm import (
    BlockConfig,
    KernelLaunch,
    PipeSpec,
    dependent_chain_cycles,
    occupancy,
    schedule_blocks,
    sustained_ipc,
    throughput_cycles,
)


class TestBlockConfig:
    def test_warps(self):
        assert BlockConfig(threads=64).warps == 2
        assert BlockConfig(threads=33).warps == 2
        assert BlockConfig(threads=1024).warps == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockConfig(threads=0)
        with pytest.raises(ValueError):
            BlockConfig(threads=2048)
        with pytest.raises(ValueError):
            BlockConfig(threads=64, smem_bytes=-1)


class TestOccupancy:
    def test_thread_limited(self, h800):
        occ = occupancy(h800, BlockConfig(threads=1024,
                                          regs_per_thread=16))
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "threads"

    def test_block_limited(self, h800):
        occ = occupancy(h800, BlockConfig(threads=32,
                                          regs_per_thread=16))
        assert occ.blocks_per_sm == h800.max_blocks_per_sm
        assert occ.limiter == "blocks"

    def test_register_limited(self, h800):
        occ = occupancy(h800, BlockConfig(threads=256,
                                          regs_per_thread=255))
        assert occ.limiter == "registers"
        assert occ.blocks_per_sm == 65536 // (
            (255 * 32 + 255) // 256 * 256 * 8)

    def test_smem_limited(self, h800):
        occ = occupancy(h800, BlockConfig(threads=128, regs_per_thread=16,
                                          smem_bytes=100 * 1024))
        assert occ.limiter == "shared memory"
        assert occ.blocks_per_sm == 2

    def test_smem_too_large(self, h800):
        occ = occupancy(h800, BlockConfig(
            threads=128, smem_bytes=h800.cache.shared_max_kib * 1024 + 1))
        assert occ.blocks_per_sm == 0
        assert not occ.active

    def test_ada_lower_thread_budget(self, rtx4090):
        occ = occupancy(rtx4090, BlockConfig(threads=1024,
                                             regs_per_thread=16))
        assert occ.blocks_per_sm == 1  # 1536 // 1024

    def test_warps_per_sm(self, h800):
        cfg = BlockConfig(threads=256, regs_per_thread=16)
        occ = occupancy(h800, cfg)
        assert occ.warps_per_sm(cfg) == occ.blocks_per_sm * 8


class TestScheduler:
    def test_single_wave(self, h800):
        launch = KernelLaunch(h800.num_sms, BlockConfig(threads=1024))
        sched = schedule_blocks(h800, launch, blocks_per_sm_override=1)
        assert sched.waves == 1
        assert sched.utilization == 1.0

    def test_straggler_wave(self, h800):
        launch = KernelLaunch(h800.num_sms + 1, BlockConfig(threads=1024))
        sched = schedule_blocks(h800, launch, blocks_per_sm_override=1)
        assert sched.waves == 2
        assert sched.utilization == pytest.approx(
            (h800.num_sms + 1) / (2 * h800.num_sms))

    def test_sawtooth_shape(self, h800):
        def util(nb):
            return schedule_blocks(
                h800, KernelLaunch(nb, BlockConfig(threads=1024)),
                blocks_per_sm_override=1,
            ).utilization
        sms = h800.num_sms
        assert util(sms) == 1.0
        assert util(sms + 1) < 0.51
        assert util(2 * sms) == 1.0
        assert util(sms // 2) == pytest.approx(0.5)

    def test_cluster_granularity(self, h800):
        launch = KernelLaunch(32, BlockConfig(threads=1024),
                              cluster_size=8)
        sched = schedule_blocks(h800, launch, blocks_per_sm_override=1)
        assert sched.waves == 1

    def test_cluster_size_validation(self, h800, a100):
        with pytest.raises(ValueError, match="multiple of the cluster"):
            KernelLaunch(10, BlockConfig(threads=64), cluster_size=4)
        launch = KernelLaunch(32, BlockConfig(threads=64),
                              cluster_size=32)
        with pytest.raises(ValueError, match="exceeds"):
            schedule_blocks(h800, launch)

    def test_unrunnable_block_raises(self, h800):
        launch = KernelLaunch(1, BlockConfig(
            threads=128, smem_bytes=10 * 1024 * 1024))
        with pytest.raises(ValueError, match="cannot run"):
            schedule_blocks(h800, launch)

    def test_total_threads(self):
        launch = KernelLaunch(10, BlockConfig(threads=256))
        assert launch.total_threads == 2560


class TestPipeline:
    def test_saturated_ipc(self):
        assert sustained_ipc(latency=20, ii=4, inflight=100) == 0.25

    def test_latency_bound_ipc(self):
        assert sustained_ipc(latency=20, ii=4, inflight=2) == 0.1

    def test_zero_inflight(self):
        assert sustained_ipc(10, 1, 0) == 0.0

    def test_dependent_chain(self):
        assert dependent_chain_cycles(17.7, 100) == 1770.0
        with pytest.raises(ValueError):
            dependent_chain_cycles(10, -1)

    def test_throughput_cycles(self):
        # saturated: fill + (n-1)·II
        assert throughput_cycles(101, latency=20, ii=4,
                                 inflight=100) == 20 + 100 * 4
        assert throughput_cycles(0, latency=20, ii=4, inflight=1) == 0

    def test_pipe_spec_validation(self):
        with pytest.raises(ValueError):
            PipeSpec(latency_clk=4, initiation_interval_clk=8)
        with pytest.raises(ValueError):
            PipeSpec(latency_clk=0, initiation_interval_clk=0)

    def test_pipe_spec_ipc(self):
        p = PipeSpec(latency_clk=16, initiation_interval_clk=2)
        assert p.ipc(100) == 0.5
        assert p.ipc(4) == 0.25

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1, max_value=1000),
           st.floats(min_value=0.1, max_value=100),
           st.floats(min_value=0.1, max_value=1000))
    def test_ipc_bounded(self, latency, ii_frac, inflight):
        ii = min(ii_frac, latency)
        ipc = sustained_ipc(latency, ii, inflight)
        assert 0 < ipc <= 1.0 / ii + 1e-12
        assert ipc <= inflight / latency + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1, max_value=100),
           st.floats(min_value=1, max_value=100))
    def test_ipc_monotone_in_inflight(self, a, b):
        lo, hi = sorted((a, b))
        assert sustained_ipc(50, 2, lo) <= sustained_ipc(50, 2, hi)
