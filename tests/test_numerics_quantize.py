"""Tests for the TE-style FP8 tensor quantisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics import (
    E4M3,
    E5M2,
    QuantizedTensor,
    amax_scale,
    dequantize_fp8,
    quantization_error,
    quantize_fp8,
)


class TestAmaxScale:
    def test_places_amax_at_max_finite(self):
        x = np.array([0.5, -896.0, 10.0])
        s = amax_scale(x, E4M3)
        assert 896.0 / s == pytest.approx(E4M3.max_finite)

    def test_margin_backs_off(self):
        x = np.array([448.0])
        assert amax_scale(x, E4M3, margin=1.0) == pytest.approx(
            2 * amax_scale(x, E4M3))

    def test_degenerate_inputs(self):
        assert amax_scale(np.zeros(4)) == 1.0
        assert amax_scale(np.array([])) == 1.0
        assert amax_scale(np.array([np.inf])) == 1.0


class TestQuantizeFp8:
    def test_roundtrip_error_small(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 128))
        qt = quantize_fp8(x)
        err = np.abs(qt.dequantize() - x)
        # E4M3 eps/2 relative to amax-scaled values
        assert np.max(err / np.maximum(np.abs(x), 1e-3)) < 0.08

    def test_data_on_fp8_grid(self):
        x = np.random.default_rng(1).normal(size=64)
        qt = quantize_fp8(x)
        requant = E4M3.quantize(qt.data)
        assert np.array_equal(requant, qt.data)

    def test_no_saturation_after_amax_scaling(self):
        x = np.array([1e9, -2e9, 3.0])  # huge dynamic range
        qt = quantize_fp8(x)
        assert np.max(np.abs(qt.data)) <= E4M3.max_finite

    def test_e5m2_variant(self):
        x = np.random.default_rng(2).normal(size=32)
        qt = quantize_fp8(x, E5M2)
        assert qt.fmt is E5M2
        # coarser mantissa → larger error than E4M3
        e5 = quantization_error(x, E5M2)
        e4 = quantization_error(x, E4M3)
        assert e5 > e4

    def test_explicit_scale(self):
        qt = quantize_fp8(np.array([4.0]), scale=2.0)
        assert qt.scale == 2.0
        assert float(qt.data[0]) == 2.0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            quantize_fp8(np.ones(2), scale=-1.0)

    def test_nbytes(self):
        qt = quantize_fp8(np.ones((8, 8)))
        assert qt.nbytes == 64  # 1 byte per element

    def test_dequantize_function(self):
        x = np.array([1.0, -2.0])
        qt = quantize_fp8(x)
        assert np.allclose(dequantize_fp8(qt), x, rtol=0.07)


class TestQuantizationError:
    def test_zero_for_representable(self):
        x = np.array([448.0, -224.0, 0.0])
        assert quantization_error(x) == pytest.approx(0.0, abs=1e-12)

    def test_empty_and_zero(self):
        assert quantization_error(np.array([])) == 0.0
        assert quantization_error(np.zeros(8)) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False).filter(
                                  lambda v: abs(v) > 1e-6),
                    min_size=2, max_size=64))
    def test_relative_rms_bounded(self, values):
        x = np.array(values)
        # E4M3 has 3 mantissa bits: worst-case relative error per
        # element ≈ 2^-4 of the *amax*, so RMS relative to tensor RMS
        # stays well below 1 for any scale-coherent data.
        err = quantization_error(x, E4M3)
        amax = np.max(np.abs(x))
        rms = np.sqrt(np.mean(x * x))
        assert err <= (E4M3.machine_epsilon / 2 * amax / rms
                       + 0.07)  # subnormal slack
