"""Tests for the functional tensor-core execution engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.isa import MatrixShape, MmaInstruction, WgmmaInstruction
from repro.isa.dtypes import DType
from repro.numerics import FP16
from repro.tensorcore import (
    matmul_quantized,
    mma_functional,
    wgmma_functional,
)


def _rand(shape, seed=0, scale=1.0):
    return np.random.default_rng(seed).normal(size=shape) * scale


class TestMatmulQuantized:
    def test_exact_small_integers(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0, 6.0], [7.0, 8.0]])
        d = matmul_quantized(a, b, ab_type=DType.FP16,
                             cd_type=DType.FP32)
        assert np.array_equal(d, a @ b)

    def test_inputs_quantized_to_format(self):
        # a value not representable in FP16 must be rounded first
        a = np.array([[1.0 + 2 ** -13]])
        b = np.array([[1.0]])
        d = matmul_quantized(a, b, ab_type=DType.FP16,
                             cd_type=DType.FP32)
        assert float(d[0, 0]) == 1.0

    def test_tf32_truncation_visible(self):
        a = np.array([[1.0 + 2 ** -12]])  # fits TF32 (10 mantissa bits)?
        b = np.array([[1.0]])
        d32 = matmul_quantized(a, b, ab_type=DType.TF32,
                               cd_type=DType.FP32)
        # 2^-12 < 2^-10 ulp → truncated away
        assert float(d32[0, 0]) == 1.0

    def test_fp16_accumulator_rounds_stepwise(self):
        # accumulating 1.0 + many tiny values in FP16 loses them;
        # FP32 accumulation keeps them.
        k = 64
        a = np.ones((1, k))
        b = np.full((k, 1), 2 ** -12)
        b[0, 0] = 1.0
        d16 = matmul_quantized(a, b, ab_type=DType.FP16,
                               cd_type=DType.FP16)
        d32 = matmul_quantized(a, b, ab_type=DType.FP16,
                               cd_type=DType.FP32)
        assert float(d16[0, 0]) == 1.0              # swallowed
        assert float(d32[0, 0]) > 1.0               # preserved

    def test_c_operand_added(self):
        a = np.eye(4)
        b = np.eye(4)
        c = np.full((4, 4), 2.0)
        d = matmul_quantized(a, b, ab_type=DType.FP16,
                             cd_type=DType.FP32, c=c)
        assert np.array_equal(d, np.eye(4) + 2.0)

    def test_int8_exact(self):
        a = np.array([[127.0, -128.0]])
        b = np.array([[2.0], [3.0]])
        d = matmul_quantized(a, b, ab_type=DType.INT8,
                             cd_type=DType.INT32)
        assert float(d[0, 0]) == 127 * 2 - 128 * 3

    def test_int8_range_enforced(self):
        with pytest.raises(ValueError, match="range"):
            matmul_quantized(np.array([[200.0]]), np.array([[1.0]]),
                             ab_type=DType.INT8, cd_type=DType.INT32)

    def test_int32_accumulator_wraps(self):
        k = 300
        a = np.full((1, k), 127.0)
        b = np.full((k, 1), 127.0)
        d = matmul_quantized(a, b, ab_type=DType.INT8,
                             cd_type=DType.INT32)
        expected = (127 * 127 * k + 2 ** 31) % 2 ** 32 - 2 ** 31
        assert float(d[0, 0]) == expected

    def test_binary_and_popcount(self):
        a = np.array([[1.0, 1.0, 0.0, 1.0]])
        b = np.array([[1.0], [0.0], [1.0], [1.0]])
        d = matmul_quantized(a, b, ab_type=DType.BIN1,
                             cd_type=DType.INT32)
        assert float(d[0, 0]) == 2.0  # AND + POPC

    def test_binary_rejects_non_bits(self):
        with pytest.raises(ValueError, match="0/1"):
            matmul_quantized(np.array([[2.0]]), np.array([[1.0]]),
                             ab_type=DType.BIN1, cd_type=DType.INT32)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="inner dimensions"):
            matmul_quantized(np.ones((2, 3)), np.ones((4, 2)),
                             ab_type=DType.FP16, cd_type=DType.FP32)

    def test_fp8_inputs(self):
        a = _rand((8, 8), scale=4.0)
        b = _rand((8, 8), 1, scale=4.0)
        d = matmul_quantized(a, b, ab_type=DType.E4M3,
                             cd_type=DType.FP32)
        rel = np.abs(d - a @ b) / (np.abs(a @ b) + 1e-9)
        assert np.median(rel) < 0.2   # coarse FP8 grid

    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(np.float64, (4, 8),
                      elements=st.floats(-100, 100)),
           hnp.arrays(np.float64, (8, 4),
                      elements=st.floats(-100, 100)))
    def test_fp16_in_fp32_acc_close_to_exact(self, a, b):
        d = matmul_quantized(a, b, ab_type=DType.FP16,
                             cd_type=DType.FP32)
        aq = FP16.quantize(a)
        bq = FP16.quantize(b)
        ref = np.float32(aq) @ np.float32(bq)
        assert np.allclose(d, ref, rtol=1e-5, atol=1e-3)


class TestInstructionWrappers:
    def test_mma_shapes_enforced(self):
        i = MmaInstruction(DType.FP16, DType.FP32, MatrixShape(16, 8, 16))
        with pytest.raises(ValueError, match="A must be"):
            mma_functional(i, np.ones((16, 8)), np.ones((16, 8)))
        with pytest.raises(ValueError, match="B must be"):
            mma_functional(i, np.ones((16, 16)), np.ones((8, 8)))
        with pytest.raises(ValueError, match="C must be"):
            mma_functional(i, np.ones((16, 16)), np.ones((16, 8)),
                           c=np.ones((8, 8)))

    def test_mma_computes(self):
        i = MmaInstruction(DType.FP16, DType.FP32, MatrixShape(16, 8, 16))
        a = _rand((16, 16), 2)
        b = _rand((16, 8), 3)
        d = mma_functional(i, a, b)
        ref = FP16.quantize(a) @ FP16.quantize(b)
        assert np.allclose(d, ref, rtol=1e-6)

    def test_sparse_mma_uses_effective_shape(self):
        i = MmaInstruction(DType.FP16, DType.FP32,
                           MatrixShape(16, 8, 16), sparse=True)
        a = _rand((16, 32), 4)   # decompressed A: m × 2k
        b = _rand((32, 8), 5)
        d = mma_functional(i, a, b)
        assert d.shape == (16, 8)

    def test_wgmma_accumulates_into_d(self):
        w = WgmmaInstruction(DType.FP16, DType.FP32, 8)
        a = np.ones((64, 16))
        b = np.ones((16, 8))
        d0 = np.full((64, 8), 10.0)
        d = wgmma_functional(w, a, b, d=d0)
        assert np.allclose(d, 26.0)  # 16 + 10

    def test_wgmma_shape_errors(self):
        w = WgmmaInstruction(DType.FP16, DType.FP32, 16)
        with pytest.raises(ValueError, match="A must be"):
            wgmma_functional(w, np.ones((32, 16)), np.ones((16, 16)))
        with pytest.raises(ValueError, match="D must be"):
            wgmma_functional(w, np.ones((64, 16)), np.ones((16, 16)),
                             d=np.ones((64, 8)))
