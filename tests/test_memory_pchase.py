"""Tests for the P-chase latency benchmark (Table IV)."""

from __future__ import annotations

import pytest

from repro.memory import PChase, measure_latencies
from repro.memory.pchase import _chain, _coprime_stride

#: Table IV reference values
PAPER_TABLE4 = {
    "RTX4090": {"L1 Cache": 43.4, "Shared": 30.1, "L2 Cache": 273.0,
                "Global": 541.5},
    "A100": {"L1 Cache": 37.9, "Shared": 29.0, "L2 Cache": 261.5,
             "Global": 466.3},
    "H800": {"L1 Cache": 40.7, "Shared": 29.0, "L2 Cache": 263.0,
             "Global": 478.8},
}


class TestChain:
    def test_sequential_chain_visits_all(self):
        nxt = _chain(16)
        seen, idx = set(), 0
        for _ in range(16):
            seen.add(idx)
            idx = int(nxt[idx])
        assert seen == set(range(16))
        assert idx == 0  # closed cycle

    def test_random_chain_is_permutation_cycle(self):
        nxt = _chain(64, seed=42)
        seen, idx = set(), 0
        for _ in range(64):
            assert idx not in seen
            seen.add(idx)
            idx = int(nxt[idx])
        assert len(seen) == 64

    def test_too_small(self):
        with pytest.raises(ValueError):
            _chain(1)

    def test_strided_chain_visits_all(self):
        nxt = _chain(15, stride_entries=4)  # 4 is coprime with 15
        seen, idx = set(), 0
        for _ in range(15):
            seen.add(idx)
            idx = int(nxt[idx])
        assert seen == set(range(15))
        assert idx == 0

    def test_noncoprime_stride_adjusted_not_dropped(self):
        """A stride sharing a factor with n must not collapse to a
        sequential walk — it snaps to the nearest coprime stride and
        still visits every entry."""
        nxt = _chain(16, stride_entries=4)  # gcd 4 → adjusted
        seen, idx = set(), 0
        hops = []
        for _ in range(16):
            seen.add(idx)
            hops.append(idx)
            idx = int(nxt[idx])
        assert seen == set(range(16))
        # the walk kept its strided character (nearest coprime is 3)
        assert hops[1] == 3

    def test_coprime_stride_selection(self):
        assert _coprime_stride(16, 1) == 1
        assert _coprime_stride(16, 4) == 3   # tie prefers the smaller
        assert _coprime_stride(15, 6) == 7   # 5 shares a factor, 7 not
        assert _coprime_stride(12, 6) == 5

    def test_stride_below_one_rejected(self):
        with pytest.raises(ValueError, match="stride_entries"):
            _chain(16, stride_entries=0)


class TestPerLevelLatency:
    def test_l1(self, any_device):
        r = PChase(any_device).l1_latency(iters=256)
        assert r.hits_at_level == 1.0
        assert r.mean_latency_clk == pytest.approx(
            any_device.mem_latencies.l1_hit_clk, rel=1e-6)

    def test_shared(self, any_device):
        r = PChase(any_device).shared_latency(iters=128)
        assert r.mean_latency_clk == pytest.approx(
            any_device.mem_latencies.shared_clk)

    def test_l2(self, any_device):
        r = PChase(any_device).l2_latency(array_kib=2048, iters=256)
        assert r.hits_at_level == 1.0
        assert r.mean_latency_clk == pytest.approx(
            any_device.mem_latencies.l2_hit_clk, rel=1e-6)

    def test_l2_probe_must_fit(self, h800):
        with pytest.raises(ValueError, match="fit in L2"):
            PChase(h800).l2_latency(array_kib=h800.cache.l2_size_kib * 2)

    def test_global_capacity_misses(self, tiny_device):
        r = PChase(tiny_device).global_latency(iters=256)
        assert r.hits_at_level > 0.99
        assert r.mean_latency_clk == pytest.approx(
            tiny_device.mem_latencies.global_clk, rel=0.01)

    def test_cold_tlb_costs_more(self, tiny_device):
        p = PChase(tiny_device)
        warm = p.global_latency(iters=128).mean_latency_clk
        cold = p.global_latency_cold_tlb(iters=128).mean_latency_clk
        assert cold > warm + 100

    def test_cold_tlb_pays_exact_miss_penalty(self, tiny_device):
        """The cold chase strides one entry per page with no init
        pass, so within the first lap every hop misses L1, L2 *and*
        the TLB — the mean is exactly the DRAM service latency plus
        the full TLB-miss penalty (the regime the paper's warm-up
        initialisation exists to avoid, §III-A4)."""
        lat = tiny_device.mem_latencies
        r = PChase(tiny_device).global_latency_cold_tlb(iters=128)
        assert r.hits_at_level == 1.0   # every access served by DRAM
        assert r.mean_latency_clk == pytest.approx(
            lat.l2_hit_clk + lat.dram_clk + lat.tlb_miss_clk)


class TestTable4:
    @pytest.mark.parametrize("device_name", sorted(PAPER_TABLE4))
    def test_matches_paper(self, device_name):
        from repro.arch import get_device
        got = measure_latencies(get_device(device_name), fast=True)
        for level, expect in PAPER_TABLE4[device_name].items():
            assert got[level] == pytest.approx(expect, rel=0.02), \
                (device_name, level)

    def test_paper_ratios(self):
        from repro.arch import get_device
        results = {d: measure_latencies(get_device(d), fast=True)
                   for d in PAPER_TABLE4}
        l2_l1 = sum(r["L2 Cache"] / r["L1 Cache"]
                    for r in results.values()) / 3
        g_l2 = sum(r["Global"] / r["L2 Cache"]
                   for r in results.values()) / 3
        assert l2_l1 == pytest.approx(6.5, rel=0.1)
        assert g_l2 == pytest.approx(1.9, rel=0.1)
