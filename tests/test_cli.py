"""Tests for the hopperdissect CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table07_mma" in out
        assert "Fig. 8" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "H800" in out and "2039 GB/s" in out

    def test_run_single(self, capsys):
        assert main(["run", "table06_sass"]) == 0
        out = capsys.readouterr().out
        assert "HGMMA.64x256x16.F16" in out
        assert "[PASS]" in out

    def test_run_without_args_errors(self, capsys):
        assert main(["run"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "table99_nope"])

    def test_report_to_file(self, tmp_path, capsys):
        # full report is expensive; exercise via a tiny subset by
        # patching run_all
        import repro.cli as cli

        def fake_run_all(**_kw):
            from repro.core import run_experiment
            return {"table03_devices": run_experiment("table03_devices")}

        orig = cli.run_all
        cli.run_all = fake_run_all
        try:
            out_file = tmp_path / "EXP.md"
            assert main(["report", "-o", str(out_file)]) == 0
            text = out_file.read_text()
            assert "Table III" in text
        finally:
            cli.run_all = orig

    def test_parser_structure(self):
        p = build_parser()
        args = p.parse_args(["run", "--all"])
        assert args.all
        assert args.jobs == 1 and not args.no_cache
        assert not args.profile and args.bench_json is None


class TestPerfFlags:
    def test_run_uses_cache_across_invocations(self, capsys):
        assert main(["run", "table03_devices"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "table03_devices"]) == 0
        assert capsys.readouterr().out == first

    def test_run_no_cache(self, capsys):
        assert main(["run", "--no-cache", "table03_devices"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_run_jobs(self, capsys):
        assert main(["run", "-j", "2", "table03_devices",
                     "table06_sass"]) == 0
        out = capsys.readouterr().out
        # requested order, not completion order
        assert "HGMMA" in out and "H800" in out
        assert out.index("H800") < out.index("HGMMA")

    def test_run_profile_writes_bench_json(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_perf.json"
        assert main(["run", "table03_devices", "--profile",
                     "--bench-json", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "table03_devices" in out and f"wrote {bench}" in out
        from repro.perf import load_bench_json
        data = load_bench_json(bench)
        assert "table03_devices" in data["experiments"]

    def test_report_accepts_jobs(self, tmp_path, capsys):
        import repro.cli as cli

        seen = {}

        def fake_run_all(**kw):
            seen.update(kw)
            from repro.core import run_experiment
            return {"table03_devices": run_experiment("table03_devices")}

        orig = cli.run_all
        cli.run_all = fake_run_all
        try:
            out_file = tmp_path / "EXP.md"
            assert main(["report", "-o", str(out_file), "--jobs", "3",
                         "--no-cache"]) == 0
        finally:
            cli.run_all = orig
        assert seen["jobs"] == 3 and seen["cache"] is None
