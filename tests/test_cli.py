"""Tests for the hopperdissect CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table07_mma" in out
        assert "Fig. 8" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "H800" in out and "2039 GB/s" in out

    def test_devices_capability_matrix(self, capsys):
        assert main(["devices"]) == 0
        lines = capsys.readouterr().out.splitlines()
        header = lines[0].split()
        assert header[:4] == ["Device", "Arch", "CC", "TC"]
        assert {"wgmma", "tma", "dsm", "fp8", "dpx", "sparse",
                "cluster"} <= set(header)
        rows = {l.split()[0]: l.split() for l in lines[1:6]}
        assert {"A100", "RTX4090", "H800", "B200", "V100"} == set(rows)
        # Hopper row carries wgmma; Blackwell dropped it for tcgen05
        assert "yes" in rows["H800"][4:5]  # wgmma column
        assert rows["B200"][4] == "-"
        assert rows["B200"][1:3] == ["Blackwell", "10.0"]
        assert rows["V100"][1:3] == ["Volta", "7.0"]

    def test_run_single(self, capsys):
        assert main(["run", "table06_sass"]) == 0
        out = capsys.readouterr().out
        assert "HGMMA.64x256x16.F16" in out
        assert "[PASS]" in out

    def test_run_without_args_errors(self, capsys):
        assert main(["run"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "table99_nope"])

    def test_report_to_file(self, tmp_path, capsys):
        # full report is expensive; exercise via a tiny subset by
        # patching run_all
        import repro.cli as cli

        def fake_run_all(**_kw):
            from repro.core import run_experiment
            return {"table03_devices": run_experiment("table03_devices")}

        orig = cli.run_all
        cli.run_all = fake_run_all
        try:
            out_file = tmp_path / "EXP.md"
            assert main(["report", "-o", str(out_file)]) == 0
            text = out_file.read_text()
            assert "Table III" in text
        finally:
            cli.run_all = orig

    def test_parser_structure(self):
        p = build_parser()
        args = p.parse_args(["run", "--all"])
        assert args.all
        assert args.jobs == 1 and not args.no_cache
        assert not args.profile and args.bench_json is None


class TestPerfFlags:
    def test_run_uses_cache_across_invocations(self, capsys):
        assert main(["run", "table03_devices"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "table03_devices"]) == 0
        assert capsys.readouterr().out == first

    def test_run_no_cache(self, capsys):
        assert main(["run", "--no-cache", "table03_devices"]) == 0
        assert "Table III" in capsys.readouterr().out

    def test_run_jobs(self, capsys):
        assert main(["run", "-j", "2", "table03_devices",
                     "table06_sass"]) == 0
        out = capsys.readouterr().out
        # requested order, not completion order
        assert "HGMMA" in out and "H800" in out
        assert out.index("H800") < out.index("HGMMA")

    def test_run_profile_writes_bench_json(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_perf.json"
        assert main(["run", "table03_devices", "--profile",
                     "--bench-json", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "table03_devices" in out and f"wrote {bench}" in out
        from repro.perf import load_bench_json
        data = load_bench_json(bench)
        assert "table03_devices" in data["experiments"]

    def test_report_accepts_jobs(self, tmp_path, capsys):
        import repro.cli as cli

        seen = {}

        def fake_run_all(**kw):
            seen.update(kw)
            from repro.core import run_experiment
            return {"table03_devices": run_experiment("table03_devices")}

        orig = cli.run_all
        cli.run_all = fake_run_all
        try:
            out_file = tmp_path / "EXP.md"
            assert main(["report", "-o", str(out_file), "--jobs", "3",
                         "--no-cache"]) == 0
        finally:
            cli.run_all = orig
        assert seen["jobs"] == 3 and seen["cache"] is None


class TestContextFlags:
    def test_single_device_run(self, capsys):
        assert main(["run", "--devices", "A100", "--no-cache",
                     "table04_mem_latency"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out
        assert "RTX4090" not in out
        assert "context: devices=A100" in out

    def test_device_flag_is_an_alias(self, capsys):
        assert main(["run", "--device", "H800", "--no-cache",
                     "table06_sass"]) == 0
        assert "HGMMA" in capsys.readouterr().out

    def test_experiment_name_right_after_devices_flag(self, capsys):
        # --devices must not swallow the positional experiment name
        assert main(["run", "--devices", "A100",
                     "table04_mem_latency", "--no-cache"]) == 0
        assert "context: devices=A100" in capsys.readouterr().out

    def test_devices_comma_separated_and_repeated(self, capsys):
        assert main(["run", "--devices", "A100,H800", "--no-cache",
                     "table04_mem_latency"]) == 0
        assert "context: devices=A100,H800" in capsys.readouterr().out
        assert main(["run", "--device", "H800", "--device", "A100",
                     "--no-cache", "table04_mem_latency"]) == 0
        assert "context: devices=H800,A100" in capsys.readouterr().out

    def test_all_skips_unsupported_with_note(self, capsys,
                                             monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "list_experiments",
            lambda: ["table03_devices", "fig08_dsm_rbc"])
        assert main(["run", "--all", "--devices", "A100",
                     "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "skipping fig08_dsm_rbc" in captured.err
        assert "Table III" in captured.out

    def test_pinned_experiment_fails_clearly_when_named(self):
        with pytest.raises(KeyError, match="pinned"):
            main(["run", "--devices", "A100", "--no-cache",
                  "fig08_dsm_rbc"])

    def test_unknown_device_exits_with_message(self, capsys):
        with pytest.raises(SystemExit, match="bad run context"):
            main(["run", "--devices", "H100", "table03_devices"])

    def test_seed_flag_reaches_builders(self, capsys):
        assert main(["run", "--seed", "123", "--no-cache",
                     "ext_fp8_accuracy"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "--seed", "123", "--no-cache",
                     "ext_fp8_accuracy"]) == 0
        assert capsys.readouterr().out == first
        assert main(["run", "--no-cache", "ext_fp8_accuracy"]) == 0
        assert capsys.readouterr().out != first

    def test_bench_history_flag_appends(self, tmp_path, capsys):
        hist = tmp_path / "hist.jsonl"
        for _ in range(2):
            assert main(["run", "table03_devices", "--no-cache",
                         "--profile",
                         "--bench-json",
                         str(tmp_path / "BENCH_perf.json"),
                         "--bench-history", str(hist)]) == 0
        from repro.perf import load_bench_history
        entries = load_bench_history(hist)
        assert len(entries) == 2
        assert all("table03_devices" in e["experiments"]
                   for e in entries)
        assert entries[0]["label"].startswith("devices=")


class TestCountersJson:
    """``--counters-json`` writes the hopperdissect.counters/v1 dump."""

    @staticmethod
    def _validator():
        import importlib.util
        from pathlib import Path
        spec = importlib.util.spec_from_file_location(
            "validate_counters",
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "validate_counters.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_run_writes_schema_valid_dump(self, tmp_path, capsys):
        import json
        out = tmp_path / "counters.json"
        assert main(["run", "table07_mma", "--no-cache",
                     "--counters-json", str(out)]) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["schema"] == "hopperdissect.counters/v1"
        assert payload["context"] == (
            "devices=RTX4090,A100,H800;seed=0;fidelity=fast")
        assert payload["counters"]["exp.completed"] == 1
        assert payload["counters"]["tc.mma.instructions"] > 0
        # keys arrive sorted (canonical form)
        names = list(payload["counters"])
        assert names == sorted(names)

    def test_dump_passes_the_schema_validator(self, tmp_path):
        out = tmp_path / "counters.json"
        assert main(["run", "table03_devices", "--no-cache",
                     "--counters-json", str(out)]) == 0
        mod = self._validator()
        assert mod.validate(out) >= 1

    def test_validator_rejects_broken_dumps(self, tmp_path):
        import json
        from pathlib import Path
        mod = self._validator()
        bad = tmp_path / "bad.json"

        def canonical(payload):
            bad.write_text(json.dumps(
                payload, sort_keys=True,
                separators=(",", ":")) + "\n")

        canonical({"schema": "hopperdissect.counters/v0",
                   "context": None, "counters": {}})
        with pytest.raises(ValueError, match="schema"):
            mod.validate(Path(bad))
        canonical({"schema": "hopperdissect.counters/v1",
                   "context": None, "counters": {"x": -1}})
        with pytest.raises(ValueError, match="non-monotonic"):
            mod.validate(Path(bad))
        canonical({"schema": "hopperdissect.counters/v1",
                   "context": None, "counters": {"x": 1.5}})
        with pytest.raises(ValueError, match="non-integer"):
            mod.validate(Path(bad))
        bad.write_text(json.dumps(
            {"counters": {}, "context": None,
             "schema": "hopperdissect.counters/v1"}, indent=2))
        with pytest.raises(ValueError, match="canonical"):
            mod.validate(Path(bad))

    def test_context_token_recorded(self, tmp_path):
        import json
        out = tmp_path / "counters.json"
        assert main(["run", "table04_mem_latency", "--no-cache",
                     "--devices", "A100", "--counters-json",
                     str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["context"].startswith("devices=A100")

    def test_stats_subcommand_dump(self, tmp_path, capsys):
        import json
        out = tmp_path / "stats_counters.json"
        assert main(["stats", "table07_mma",
                     "--counters-json", str(out)]) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["counters"]["tc.mma.instructions"] > 0

    def test_dump_is_deterministic_across_jobs(self, tmp_path):
        # serial and parallel regroupings sum to identical banks
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path, jobs in ((a, "1"), (b, "2")):
            assert main(["run", "table07_mma", "table06_sass",
                         "--no-cache", "-j", jobs,
                         "--counters-json", str(path)]) == 0
        assert a.read_bytes() == b.read_bytes()


class TestFuzzCli:
    @pytest.fixture
    def bad_dsm_device(self):
        from dataclasses import replace

        from repro.arch import get_device, register_device
        from repro.arch.packs import DsmCalibration
        from repro.arch.registry import DEVICES

        h800 = get_device("H800")
        register_device(h800.with_overrides(
            name="H800BAD",
            pack_override=replace(
                h800.pack,
                dsm=DsmCalibration(
                    link_bytes_per_clk=h800.pack.dsm.link_bytes_per_clk,
                    contention_alpha=-0.04))))
        yield
        DEVICES.pop("H800BAD", None)

    def test_fuzz_smoke_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "2026", "--budget", "6"]) == 0
        out = capsys.readouterr().out
        assert "6 scenarios" in out
        assert "violations: 0" in out

    def test_fuzz_counters_json(self, tmp_path, capsys):
        import json
        out = tmp_path / "fuzz_counters.json"
        assert main(["fuzz", "--seed", "2026", "--budget", "4",
                     "--counters-json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["counters"]["fuzz.scenarios"] == 4

    def test_fuzz_unknown_device_exits_two(self, capsys):
        assert main(["fuzz", "--device", "H801",
                     "--budget", "2"]) == 2
        assert "H801" in capsys.readouterr().err

    def test_fuzz_injection_repro_replay_cycle(self, bad_dsm_device,
                                               tmp_path, capsys):
        assert main(["fuzz", "--seed", "7", "--budget", "10",
                     "--device", "H800BAD",
                     "--repro-dir", str(tmp_path),
                     "--max-repros", "1"]) == 1
        assert "dsm_contention_monotone" in capsys.readouterr().out
        repros = sorted(tmp_path.glob("repro-*.jsonl"))
        assert len(repros) == 1

        # still reproduces while the bad device is registered
        assert main(["fuzz", "--replay", str(repros[0])]) == 1
        assert "dsm_contention_monotone" in capsys.readouterr().out

    def test_fuzz_replay_healthy_repro_exits_zero(self, tmp_path,
                                                  capsys):
        from repro.fuzz import Scenario, Violation, write_repro
        from repro.serve.schema import parse_query

        scenario = Scenario(
            index=0, seed=0, devices=("H800",),
            queries=tuple(
                parse_query({"kind": "dsm.bandwidth",
                             "device": "H800",
                             "params": {"cluster_size": cs}})
                for cs in (2, 4)))
        path = write_repro(
            tmp_path / "stale.jsonl", scenario,
            Violation(invariant="dsm_contention_monotone",
                      scenario_index=0, seed=0, message="stale"))
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "no invariant fires any more" in \
            capsys.readouterr().out

    def test_fuzz_replay_bad_file_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema":"nope"}\n')
        assert main(["fuzz", "--replay", str(bad)]) == 2
        assert "bad repro file" in capsys.readouterr().err

    def test_parser_has_fuzz_flags(self):
        args = build_parser().parse_args(
            ["fuzz", "--seed", "5", "--budget", "30", "-j", "2",
             "--device", "H800,A100", "--no-shrink"])
        assert args.seed == 5 and args.budget == 30
        assert args.jobs == 2 and args.no_shrink
        assert args.devices == ["H800,A100"]
