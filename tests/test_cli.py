"""Tests for the hopperdissect CLI."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table07_mma" in out
        assert "Fig. 8" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "H800" in out and "2039 GB/s" in out

    def test_run_single(self, capsys):
        assert main(["run", "table06_sass"]) == 0
        out = capsys.readouterr().out
        assert "HGMMA.64x256x16.F16" in out
        assert "[PASS]" in out

    def test_run_without_args_errors(self, capsys):
        assert main(["run"]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "table99_nope"])

    def test_report_to_file(self, tmp_path, capsys):
        # full report is expensive; exercise via a tiny subset by
        # patching run_all
        import repro.cli as cli

        def fake_run_all():
            from repro.core import run_experiment
            return {"table03_devices": run_experiment("table03_devices")}

        orig = cli.run_all
        cli.run_all = fake_run_all
        try:
            out_file = tmp_path / "EXP.md"
            assert main(["report", "-o", str(out_file)]) == 0
            text = out_file.read_text()
            assert "Table III" in text
        finally:
            cli.run_all = orig

    def test_parser_structure(self):
        p = build_parser()
        args = p.parse_args(["run", "--all"])
        assert args.all
