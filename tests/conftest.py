"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.arch import get_device


@pytest.fixture(autouse=True)
def _hermetic_result_cache(tmp_path, monkeypatch):
    """Point the result cache at a throwaway dir so tests never read
    or write the user's real cache."""
    monkeypatch.setenv("HOPPERDISSECT_CACHE_DIR",
                       str(tmp_path / "result-cache"))


@pytest.fixture(scope="session")
def a100():
    return get_device("A100")


@pytest.fixture(scope="session")
def rtx4090():
    return get_device("RTX4090")


@pytest.fixture(scope="session")
def h800():
    return get_device("H800")


@pytest.fixture(scope="session", params=["A100", "RTX4090", "H800"])
def any_device(request):
    """Parametrised over all three paper devices."""
    return get_device(request.param)


@pytest.fixture()
def tiny_device(h800):
    """An H800 with a shrunken L2 for fast over-capacity tests."""
    from dataclasses import replace
    return h800.with_overrides(
        cache=replace(h800.cache, l2_size_kib=512)
    )
