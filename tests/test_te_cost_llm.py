"""Tests for the TE cost model, LLM inference model and workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.te import (
    CostModel,
    LLAMA_MODELS,
    LlmInferenceModel,
    Precision,
    ShareGptWorkload,
)


class TestCostModel:
    def test_gemm_rates_ordered(self, h800):
        cm = CostModel(h800)
        assert cm.gemm_tflops(Precision.FP8) \
            > cm.gemm_tflops(Precision.FP16) \
            > cm.gemm_tflops(Precision.FP32)

    def test_fp8_unsupported_on_ampere(self, a100):
        with pytest.raises(ValueError, match="no fp8"):
            CostModel(a100).gemm_tflops(Precision.FP8)

    def test_gemm_compute_vs_io_bound(self, h800):
        cm = CostModel(h800)
        big = cm.gemm(8192, 8192, 8192, Precision.FP16)
        small = cm.gemm(64, 64, 64, Precision.FP16)
        assert big.seconds > small.seconds
        # small GEMM dominated by launch overhead
        assert small.seconds >= cm.launch_overhead_s

    def test_gemm_validation(self, h800):
        with pytest.raises(ValueError):
            CostModel(h800).gemm(0, 8, 8, Precision.FP16)

    def test_elementwise_cost(self, h800):
        cm = CostModel(h800)
        op = cm.elementwise(cm.membw_bytes_per_s)  # 1 second of traffic
        assert op.seconds == pytest.approx(1.0, rel=0.01)
        with pytest.raises(ValueError):
            cm.elementwise(-1)

    def test_linear_fp8_overheads_present(self, h800):
        cm = CostModel(h800)
        ops = cm.linear(1024, 1024, 1024, Precision.FP8)
        names = [o.name for o in ops]
        assert names == ["quantize_input", "gemm", "scale_out"]
        plain = cm.linear(1024, 1024, 1024, Precision.FP16)
        assert [o.name for o in plain] == ["gemm"]

    def test_weight_cast_cache_toggle(self, h800):
        cm = CostModel(h800)
        cached = cm.linear_seconds(512, 512, 512, Precision.FP8)
        uncached = cm.linear_seconds(512, 512, 512, Precision.FP8,
                                     cache_weight_cast=False)
        assert uncached > cached

    def test_overhead_ablation_switch(self, h800):
        cm = CostModel(h800)
        with_ov = cm.linear_tflops(1024, Precision.FP8)
        without = cm.linear_tflops(1024, Precision.FP8,
                                   include_overheads=False)
        assert without > 2 * with_ov

    def test_fig4_crossover(self, h800):
        cm = CostModel(h800)
        assert cm.linear_tflops(1024, Precision.FP8) \
            < cm.linear_tflops(1024, Precision.FP16)
        assert cm.linear_tflops(16384, Precision.FP8) \
            > 1.6 * cm.linear_tflops(16384, Precision.FP16)

    def test_opcost_addition(self, h800):
        cm = CostModel(h800)
        a = cm.gemm(64, 64, 64, Precision.FP16)
        b = cm.elementwise(1024)
        s = a + b
        assert s.seconds == a.seconds + b.seconds
        assert s.flops == a.flops


class TestLlamaSpecs:
    def test_registry(self):
        assert LLAMA_MODELS["llama-2-7B"].layers == 32
        assert LLAMA_MODELS["llama-2-13B"].hidden == 5120

    def test_weight_bytes_by_precision(self):
        m = LLAMA_MODELS["llama-2-7B"]
        assert m.weight_bytes(Precision.FP32) \
            == 2 * m.weight_bytes(Precision.BF16)
        # FP8 keeps master + shadow copies: MORE than BF16
        assert m.weight_bytes(Precision.FP8) \
            > m.weight_bytes(Precision.BF16)

    def test_kv_cache_scales(self):
        m = LLAMA_MODELS["llama-3B"]
        assert m.kv_cache_bytes(8, 256) == 2 * m.kv_cache_bytes(4, 256)


class TestLlmInference:
    def test_table12_oom_matrix(self):
        from repro.arch import get_device
        rtx = LlmInferenceModel(get_device("RTX4090"))
        a100 = LlmInferenceModel(get_device("A100"))
        h800 = LlmInferenceModel(get_device("H800"))
        m7 = LLAMA_MODELS["llama-2-7B"]
        m13 = LLAMA_MODELS["llama-2-13B"]
        assert rtx.estimate(m7, Precision.FP32).status == "OOM"
        assert rtx.estimate(m7, Precision.FP8).status == "OOM"
        assert rtx.estimate(m7, Precision.BF16).status == "ok"
        assert a100.estimate(m13, Precision.FP32).status == "OOM"
        assert a100.estimate(m13, Precision.BF16).status == "ok"
        assert a100.estimate(m7, Precision.FP8).status == "-"
        assert h800.estimate(m13, Precision.FP32).status == "ok"

    def test_throughput_magnitudes(self, h800):
        m = LlmInferenceModel(h800)
        est = m.estimate(LLAMA_MODELS["llama-3B"], Precision.BF16)
        # paper: 624 tokens/s — same ballpark required
        assert 400 < est.tokens_per_second < 900

    def test_fp8_no_decode_advantage(self, h800):
        m = LlmInferenceModel(h800)
        spec = LLAMA_MODELS["llama-2-7B"]
        fp8 = m.estimate(spec, Precision.FP8).tokens_per_second
        bf16 = m.estimate(spec, Precision.BF16).tokens_per_second
        assert fp8 <= bf16 * 1.1

    def test_bigger_models_slower(self, h800):
        m = LlmInferenceModel(h800)
        t = [m.estimate(LLAMA_MODELS[n],
                        Precision.BF16).tokens_per_second
             for n in ("llama-3B", "llama-2-7B", "llama-2-13B")]
        assert t[0] > t[1] > t[2]

    def test_workload_driven_estimate(self, h800):
        m = LlmInferenceModel(h800)
        est = m.estimate_workload(LLAMA_MODELS["llama-3B"],
                                  Precision.BF16, n_requests=32)
        assert est.status == "ok"
        assert est.tokens_per_second > 0

    def test_cell_formatting(self, h800):
        m = LlmInferenceModel(h800)
        est = m.estimate(LLAMA_MODELS["llama-3B"], Precision.BF16)
        assert "." in est.cell


class TestWorkload:
    def test_lengths_clipped(self):
        wl = ShareGptWorkload(max_input=128, max_output=128, seed=1)
        reqs = wl.sample(500)
        assert all(1 <= r.input_len <= 128 for r in reqs)
        assert all(1 <= r.output_len <= 128 for r in reqs)

    def test_deterministic_with_seed(self):
        a = ShareGptWorkload(seed=7).sample(20)
        b = ShareGptWorkload(seed=7).sample(20)
        assert a == b
        c = ShareGptWorkload(seed=8).sample(20)
        assert a != c

    def test_distribution_shape(self):
        reqs = ShareGptWorkload(max_input=10 ** 6, max_output=10 ** 6,
                                seed=0).sample(4000)
        inputs = np.array([r.input_len for r in reqs])
        outputs = np.array([r.output_len for r in reqs])
        # heavy-tailed: mean >> median (log-normal mixture)
        assert inputs.mean() > 1.3 * np.median(inputs)
        # responses typically longer than prompts
        assert np.median(outputs) > np.median(inputs)

    def test_batches(self):
        wl = ShareGptWorkload(seed=0)
        groups = wl.batches(20, 8)
        assert [len(g) for g in groups] == [8, 8, 4]
        with pytest.raises(ValueError):
            wl.batches(10, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShareGptWorkload(max_input=0)
        with pytest.raises(ValueError):
            ShareGptWorkload().sample(0)

    def test_total_len(self):
        from repro.te import Request
        assert Request(10, 20).total_len == 30
