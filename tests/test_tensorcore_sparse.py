"""Tests for 2:4 structured sparsity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensorcore import (
    SparseOperand,
    compress_2_4,
    decompress_2_4,
    prune_2_4,
    sparsity_pattern_valid,
)


class TestPrune:
    def test_keeps_two_largest_per_group(self):
        a = np.array([[1.0, -5.0, 3.0, 0.5]])
        p = prune_2_4(a)
        assert list(p[0]) == [0.0, -5.0, 3.0, 0.0]

    def test_ties_keep_earlier(self):
        a = np.array([[2.0, 2.0, 2.0, 2.0]])
        p = prune_2_4(a)
        assert list(p[0]) == [2.0, 2.0, 0.0, 0.0]

    def test_already_sparse_unchanged(self):
        a = np.array([[0.0, 7.0, 0.0, -3.0, 1.0, 0.0, 0.0, 2.0]])
        assert np.array_equal(prune_2_4(a), a)

    def test_validates_shape(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            prune_2_4(np.ones((2, 6)))
        with pytest.raises(ValueError, match="2-D"):
            prune_2_4(np.ones(8))

    def test_pattern_validity(self):
        assert sparsity_pattern_valid(np.zeros((2, 8)))
        assert not sparsity_pattern_valid(np.ones((2, 8)))
        assert sparsity_pattern_valid(prune_2_4(np.ones((2, 8))))


class TestCompressDecompress:
    def test_roundtrip_of_pruned(self):
        rng = np.random.default_rng(0)
        a = prune_2_4(rng.normal(size=(16, 32)))
        op = compress_2_4(a)
        assert op.values.shape == (16, 16)
        assert np.array_equal(decompress_2_4(op), a)

    def test_compress_prunes_dense_input(self):
        a = np.random.default_rng(1).normal(size=(8, 16))
        op = compress_2_4(a)
        back = decompress_2_4(op)
        assert sparsity_pattern_valid(back)
        assert np.array_equal(back, prune_2_4(a))

    def test_metadata_range(self):
        a = np.random.default_rng(2).normal(size=(4, 8))
        op = compress_2_4(a)
        assert op.metadata.dtype == np.uint8
        assert op.metadata.max() < 4

    def test_metadata_bytes(self):
        op = compress_2_4(np.ones((16, 32)))
        # 2 bits per kept element: 16 rows × 16 kept × 2 bits
        assert op.compressed_bytes == 16 * 16 * 2 / 8

    def test_operand_validation(self):
        with pytest.raises(ValueError, match="shapes differ"):
            SparseOperand(np.ones((2, 4)), np.zeros((2, 3),
                                                    dtype=np.uint8), 8)
        with pytest.raises(ValueError, match="k/2"):
            SparseOperand(np.ones((2, 4)), np.zeros((2, 4),
                                                    dtype=np.uint8), 16)
        with pytest.raises(ValueError, match=r"\[0, 4\)"):
            SparseOperand(np.ones((1, 2)),
                          np.array([[0, 5]], dtype=np.uint8), 4)

    @settings(max_examples=100, deadline=None)
    @given(hnp.arrays(np.float64, (8, 16),
                      elements=st.floats(-1e6, 1e6)))
    def test_roundtrip_property(self, a):
        pruned = prune_2_4(a)
        assert sparsity_pattern_valid(pruned)
        assert np.array_equal(decompress_2_4(compress_2_4(pruned)),
                              pruned)

    @settings(max_examples=100, deadline=None)
    @given(hnp.arrays(np.float64, (4, 12),
                      elements=st.floats(-100, 100)))
    def test_prune_preserves_largest_energy(self, a):
        pruned = prune_2_4(a)
        # pruning keeps at least half the groups' L2 energy (it keeps
        # the 2 largest of 4)
        assert np.sum(pruned ** 2) >= 0.5 * np.sum(a ** 2) - 1e-9

    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(np.float64, (4, 8),
                      elements=st.floats(-100, 100)))
    def test_prune_idempotent(self, a):
        once = prune_2_4(a)
        assert np.array_equal(prune_2_4(once), once)
