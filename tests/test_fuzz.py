"""The fuzz subsystem: generator determinism, the invariant oracle,
shrinking, replay, and the serial-vs-parallel contract.

The acceptance story lives here end to end:

* a fixed seed over the registered devices reports **zero**
  violations (the CI ``fuzz-smoke`` job runs the same sweep bigger);
* a *known-bad* device — an H800 whose DSM pack is given a negative
  contention coefficient via ``pack_override``, so fabric bandwidth
  *rises* with cluster size — is injected test-only, convicted by
  ``dsm_contention_monotone``, shrunk to a two-query repro, written
  to disk and replayed to the very same violation;
* ``run_fuzz(jobs=2)`` returns the identical violation list and
  counter dump as the serial run.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.arch import get_device, register_device
from repro.arch.packs import DsmCalibration
from repro.arch.registry import DEVICES
from repro.fuzz import (
    Scenario,
    ScenarioGenerator,
    check_scenario,
    load_repro,
    replay_repro,
    run_fuzz,
    shrink_scenario,
    write_repro,
)
from repro.obs.catalog import uncatalogued
from repro.obs.session import ObsSession
from repro.serve.schema import parse_query

_SEED = 2026


@pytest.fixture
def bad_dsm_device():
    """An H800 whose SM-to-SM contention coefficient is negative —
    a legal, registrable spec whose aggregate fabric bandwidth
    *increases* with cluster size.  Test-only; deregistered on
    teardown."""
    h800 = get_device("H800")
    bad = h800.with_overrides(
        name="H800BAD",
        pack_override=replace(
            h800.pack,
            dsm=DsmCalibration(
                link_bytes_per_clk=h800.pack.dsm.link_bytes_per_clk,
                contention_alpha=-0.04)))
    register_device(bad)
    yield bad
    DEVICES.pop("H800BAD", None)


# -- generator ---------------------------------------------------------------


class TestGenerator:
    def test_same_seed_same_scenarios(self):
        a = [s.to_payload() for s in
             ScenarioGenerator(_SEED).generate(10)]
        b = [s.to_payload() for s in
             ScenarioGenerator(_SEED).generate(10)]
        assert a == b

    def test_scenarios_differ_across_indices_and_seeds(self):
        gen = ScenarioGenerator(_SEED)
        assert gen.scenario(0).to_payload() != \
            gen.scenario(1).to_payload()
        other = ScenarioGenerator(_SEED + 1).scenario(0)
        assert other.to_payload() != gen.scenario(0).to_payload()

    def test_payload_round_trip(self):
        scenario = ScenarioGenerator(_SEED).scenario(3)
        again = Scenario.from_payload(
            json.loads(json.dumps(scenario.to_payload())))
        assert again == scenario

    def test_lineups_stay_inside_the_pool(self):
        gen = ScenarioGenerator(_SEED, devices=("A100", "H800"))
        for s in gen.generate(8):
            assert set(s.devices) <= {"A100", "H800"}
            for q in s.queries:
                assert q.device in ("A100", "H800")

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            ScenarioGenerator(_SEED, devices=("H801",))

    def test_capability_gaps_are_planted(self):
        """Scenarios deliberately ask for capabilities a device may
        lack — the 'always unsupported, never raise' probe."""
        kinds = set()
        for s in ScenarioGenerator(_SEED,
                                   devices=("V100",)).generate(12):
            kinds.update(q.kind for q in s.queries)
        assert "wgmma" in kinds
        assert "dsm.bandwidth" in kinds


# -- oracle over healthy devices ---------------------------------------------


class TestOracleHealthy:
    def test_registered_devices_fuzz_clean(self):
        report = run_fuzz(_SEED, 40)
        assert report.passed, report.summary()
        assert report.scenarios == 40
        assert report.queries > 0
        assert report.checks > 0
        assert report.status_counts.get("ok", 0) > 0
        # capability gaps answered structurally, never raised
        assert "error" not in report.status_counts

    def test_fuzz_counters_are_catalogued(self):
        sess = ObsSession()
        with sess.activate():
            run_fuzz(_SEED, 6)
        bank = sess.counters.as_dict()
        assert bank["fuzz.scenarios"] == 6
        assert bank["fuzz.queries"] > 0
        assert "fuzz.violations" not in bank
        assert uncatalogued(bank) == []

    def test_serial_matches_jobs(self):
        def sweep(jobs):
            sess = ObsSession()
            with sess.activate():
                report = run_fuzz(_SEED, 8, jobs=jobs)
            return ([v.to_payload() for v in report.violations],
                    report.status_counts, sess.counters.dump())

        assert sweep(1) == sweep(2)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            run_fuzz(_SEED, -1)
        report = run_fuzz(_SEED, 0)
        assert report.scenarios == 0 and report.passed


# -- injection, shrinking, replay --------------------------------------------


class TestInjection:
    def test_bad_pack_is_convicted(self, bad_dsm_device):
        report = run_fuzz(7, 10, devices=("H800BAD",), shrink=False)
        assert not report.passed
        assert {v.invariant for v in report.violations} == \
            {"dsm_contention_monotone"}

    def test_shrinks_to_minimal_repro_and_replays(self, bad_dsm_device,
                                                  tmp_path):
        report = run_fuzz(7, 10, devices=("H800BAD",),
                          repro_dir=tmp_path, max_repros=1)
        assert not report.passed
        assert len(report.repro_paths) == 1
        path = report.repro_paths[0]

        scenario, invariant = load_repro(path)
        assert invariant == "dsm_contention_monotone"
        # minimal: exactly the offending adjacent pair survives ddmin
        assert len(scenario.queries) == 2
        assert all(q.kind == "dsm.bandwidth" for q in scenario.queries)
        assert scenario.devices == ("H800BAD",)

        replayed = replay_repro(path)
        assert [v.invariant for v in replayed.violations] == \
            [invariant]
        # the repro header records the shrunk violation; replay
        # reproduces it verbatim
        header = json.loads(
            open(path).read().splitlines()[0])
        assert replayed.violations[0].message == header["message"]
        # ... and the original sweep convicted the same scenario for
        # the same invariant
        assert any(v.scenario_index == scenario.index
                   and v.invariant == invariant
                   for v in report.violations)

    def test_shrink_scenario_directly(self, bad_dsm_device):
        scenario = Scenario(
            index=0, seed=0, devices=("H800BAD",),
            queries=tuple(
                parse_query({"kind": "dsm.bandwidth",
                             "device": "H800BAD",
                             "params": {"cluster_size": cs}})
                for cs in (1, 2, 4, 8, 16)
            ) + tuple(
                parse_query({"kind": "mma", "device": "H800BAD",
                             "params": {"ab": "fp16", "cd": "fp32",
                                        "m": 16, "n": 8, "k": 16}})
                for _ in range(3)))
        violation = check_scenario(scenario, deep=True).violations[0]
        small, final = shrink_scenario(scenario, violation)
        assert final.invariant == violation.invariant
        assert len(small.queries) == 2
        assert {q.param("cluster_size") for q in small.queries} <= \
            {2, 4, 8, 16}

    def test_write_and_load_round_trip(self, bad_dsm_device, tmp_path):
        scenario = Scenario(
            index=5, seed=9, devices=("H800BAD",),
            queries=(parse_query({"kind": "dsm.bandwidth",
                                  "device": "H800BAD",
                                  "params": {"cluster_size": 2}}),))
        from repro.fuzz import Violation

        v = Violation(invariant="dsm_contention_monotone",
                      scenario_index=5, seed=9, message="m")
        path = write_repro(tmp_path / "r.jsonl", scenario, v)
        again, invariant = load_repro(path)
        assert again == scenario
        assert invariant == "dsm_contention_monotone"

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema":"nope"}\n')
        with pytest.raises(ValueError, match="schema"):
            load_repro(path)


# -- oracle internals --------------------------------------------------------


class TestOracleMechanics:
    def test_deep_pass_sampling_is_deterministic(self):
        scenario = ScenarioGenerator(_SEED).scenario(4)
        a = check_scenario(scenario)
        b = check_scenario(scenario)
        assert a.to_payload() == b.to_payload()

    def test_report_payload_round_trip(self):
        from repro.fuzz import ScenarioReport

        report = check_scenario(ScenarioGenerator(_SEED).scenario(1))
        again = ScenarioReport.from_payload(
            json.loads(json.dumps(report.to_payload())))
        assert again.to_payload() == report.to_payload()

    def test_lineage_checked_from_lineup_alone(self):
        """A scenario with no queries still checks the spec lineage
        of its device lineup."""
        scenario = Scenario(index=0, seed=0,
                            devices=("V100", "A100", "H800", "B200"),
                            queries=())
        report = check_scenario(scenario, deep=True)
        assert report.violations == []
        assert report.n_checks > 0
