"""Engine-vs-scalar equivalence for the steady-state chase engine.

:class:`~repro.memory.chase.ChaseEngine` claims to be *exact*: any
periodic chase it runs — simulated laps, batched tails and
analytically extrapolated fixed-point laps alike — must produce the
same latency histogram, summed cycles, level counts, TLB hits,
``CacheStats`` fields and observability counter bank as the scalar
one-``load()``-at-a-time loop it replaced.  This suite makes that
claim a property over random chains, strides, cache operators and
iteration budgets, and pins the :class:`~repro.memory.pchase.PChase`
probes against their preserved ``*_scalar`` executable specs.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import get_device
from repro.fuzz.strategies import (
    cache_ops,
    chain_lengths,
    chase_iters,
    chase_seeds,
    chase_strides,
)
from repro.isa.memory_ops import CacheOp
from repro.memory import MemoryHierarchy, PChase
from repro.memory.chase import (ChaseEngine, chase_total_clk,
                                latency_counts)
from repro.memory.pchase import _chain_order, measure_latencies
from repro.obs.session import ObsSession


def _tiny_device():
    """An H800 with a 512 KiB L2 — over-capacity chases stay cheap."""
    h800 = get_device("H800")
    return h800.with_overrides(
        cache=replace(h800.cache, l2_size_kib=512)
    )


_TINY = _tiny_device()

#: strides giving line-grained, page-straddling and page-per-entry
#: walks (shared with the fuzzer's property strategies)
_STRIDES = chase_strides


def _scalar_chase(mh, seq, iters, *, size=32, cache_op=CacheOp.CACHE_ALL):
    """The executable spec: hop the periodic stream one load at a time."""
    lats = np.empty(iters)
    levels = {}
    tlb_hits = 0
    period = len(seq)
    for i in range(iters):
        r = mh.load(int(seq[i % period]), size, cache_op=cache_op)
        lats[i] = r.latency_clk
        levels[r.level] = levels.get(r.level, 0) + 1
        tlb_hits += r.tlb_hit
    return lats, levels, tlb_hits


def _counter_bank(mh):
    """Every post-run counter a chase can influence."""
    def fields(c):
        s = c.stats
        return (s.accesses, s.hits, s.sector_misses, s.tag_misses,
                s.evictions)

    return (fields(mh.l1_for_sm(0)), fields(mh.l2),
            (mh.tlb.hits, mh.tlb.misses))


class TestEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(n=chain_lengths(48),
           iters=chase_iters(400),
           seed=chase_seeds,
           stride=_STRIDES,
           op=cache_ops)
    def test_engine_matches_scalar_chase(self, n, iters, seed, stride,
                                         op):
        seq = _chain_order(n, seed=seed) * stride

        mh_v = MemoryHierarchy(_TINY)
        stats = ChaseEngine(mh_v, size=32, cache_op=op).run(seq, iters)

        mh_s = MemoryHierarchy(_TINY)
        lats, levels, tlb_hits = _scalar_chase(mh_s, seq, iters,
                                               cache_op=op)

        # outcomes: exact, including bit-equal summed cycles
        assert stats.latency_counts == latency_counts(lats)
        assert stats.total_latency_clk == \
            chase_total_clk(latency_counts(lats))
        assert stats.level_counts == levels
        assert stats.tlb_hits == tlb_hits
        assert stats.iters == iters
        assert stats.simulated + stats.extrapolated == iters
        # side effects: identical cache/TLB counter banks
        assert _counter_bank(mh_v) == _counter_bank(mh_s)

    @pytest.mark.parametrize("period", [8, 40])
    def test_extrapolated_chase_stays_exact(self, period):
        """Budgets far past the fixed point: most laps are accounted
        analytically, yet every number still equals the spec's."""
        seq = _chain_order(period) * 128
        mh_v = MemoryHierarchy(_TINY)
        stats = ChaseEngine(mh_v).run(seq, 5000)
        assert stats.extrapolated > 0

        mh_s = MemoryHierarchy(_TINY)
        lats, levels, tlb_hits = _scalar_chase(mh_s, seq, 5000)
        assert stats.latency_counts == latency_counts(lats)
        assert stats.level_counts == levels
        assert stats.tlb_hits == tlb_hits
        assert _counter_bank(mh_v) == _counter_bank(mh_s)

    @settings(max_examples=20, deadline=None)
    @given(n=chain_lengths(32),
           iters=st.integers(min_value=1, max_value=300),
           seed=st.sampled_from((None, 7)))
    def test_obs_counter_bank_matches_scalar(self, n, iters, seed):
        """Under an active ObsSession the engine fires exactly the
        counters (and latency-histogram buckets — they share the
        namespace) the scalar loop fires."""
        seq = _chain_order(n, seed=seed) * 128

        s_sess = ObsSession()
        with s_sess.activate():
            _scalar_chase(MemoryHierarchy(_TINY), seq, iters)

        v_sess = ObsSession()
        with v_sess.activate():
            ChaseEngine(MemoryHierarchy(_TINY)).run(seq, iters)

        assert s_sess.counters.as_dict() == v_sess.counters.as_dict()

    def test_extrapolation_engages_on_long_chases(self):
        stats = ChaseEngine(MemoryHierarchy(_TINY)).run(
            _chain_order(64) * 128, 100_000)
        assert stats.extrapolated > 0
        assert stats.simulated + stats.extrapolated == 100_000
        assert sum(stats.latency_counts.values()) == 100_000
        assert sum(stats.level_counts.values()) == 100_000

    def test_zero_iters(self):
        stats = ChaseEngine(MemoryHierarchy(_TINY)).run([0, 128], 0)
        assert stats.iters == 0
        assert stats.latency_counts == {}
        assert stats.mean_latency_clk == 0.0

    def test_validation(self):
        engine = ChaseEngine(MemoryHierarchy(_TINY))
        with pytest.raises(ValueError):
            engine.run([], 10)
        with pytest.raises(ValueError):
            engine.run([0, 128], -1)


class TestPChaseEngineParity:
    """The public probes agree between the engine and the preserved
    scalar reference loops — for sequential *and* seeded chains."""

    @pytest.mark.parametrize("seed", [None, 7])
    def test_per_level_probes_match_scalar(self, tiny_device, seed):
        probes = [
            ("l1_latency", dict(iters=256)),
            ("shared_latency", dict(iters=128)),
            ("l2_latency", dict(array_kib=256, iters=256)),
            ("global_latency", dict(iters=256)),
            ("global_latency_cold_tlb", dict(iters=128)),
        ]
        vec = PChase(tiny_device, seed=seed)
        ref = PChase(tiny_device, seed=seed, engine="scalar")
        for method, kwargs in probes:
            v = getattr(vec, method)(**kwargs)
            s = getattr(ref, method)(**kwargs)
            assert v.mean_latency_clk == s.mean_latency_clk, method
            assert v.hits_at_level == s.hits_at_level, method
            assert v.accesses == s.accesses, method

    @pytest.mark.parametrize("seed", [None, 0])
    def test_measure_latencies_engine_parity(self, seed):
        device = get_device("A100")
        assert measure_latencies(device, fast=True, seed=seed) == \
            measure_latencies(device, fast=True, seed=seed,
                              engine="scalar")

    def test_unknown_engine_rejected(self, tiny_device):
        with pytest.raises(ValueError, match="unknown engine"):
            PChase(tiny_device, engine="turbo")
