"""Cross-subsystem integration tests.

Each test ties two or more subsystems together and asserts they tell a
*consistent* story — the kind of coherence a monolithic simulator gets
for free and a modular one must prove.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import get_device
from repro.isa import (
    MatrixShape,
    MmaInstruction,
    OperandSource,
    WgmmaInstruction,
    a_layout,
    lower,
)
from repro.isa.dtypes import DType
from repro.sm import BlockConfig, KernelModel, KernelSpec, Roofline
from repro.te import CostModel, LLAMA_MODELS, LlmInferenceModel, \
    Precision
from repro.tensorcore import TensorCoreTimingModel, TiledGemm


class TestTimingConsistency:
    def test_te_gemm_rate_matches_instruction_model(self, h800):
        """The TE cost model's FP16 GEMM rate must be the wgmma
        instruction model's sustained rate (times kernel efficiency)."""
        cm = CostModel(h800)
        tm = TensorCoreTimingModel(h800)
        w = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP16, 256))
        assert cm.gemm_tflops(Precision.FP16) == pytest.approx(
            w.throughput_tflops("rand"), rel=1e-6)

    def test_tiled_gemm_estimate_matches_timing(self, h800):
        g = TiledGemm(h800, DType.FP16, DType.FP32)
        rep = g.run(np.ones((256, 256)), np.ones((256, 256)))
        tm = TensorCoreTimingModel(h800)
        w = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 256))
        assert rep.est_tflops == pytest.approx(
            w.throughput_tflops("rand"), rel=1e-6)

    def test_lowered_unit_matches_timing_path(self, h800):
        """If lowering says CUDA cores (INT4 on Hopper), the timing
        model must agree it's off the tensor core."""
        instr = MmaInstruction(DType.INT4, DType.INT32,
                               MatrixShape(16, 8, 32))
        lowered = lower(instr, h800.architecture)
        timing = TensorCoreTimingModel(h800).mma(instr)
        assert lowered.uses_tensor_core == timing.on_tensor_core \
            is False


class TestRooflineConsistency:
    def test_llm_decode_sits_in_memory_region(self, h800):
        """The LLM model's decode step and the roofline must agree:
        decode arithmetic intensity sits far below the ridge."""
        model = LLAMA_MODELS["llama-2-7B"]
        batch = 8
        flops = 2.0 * model.params * batch
        bytes_ = model.weight_bytes(Precision.BF16)
        intensity = flops / bytes_
        r = Roofline(h800, "bf16")
        assert intensity < r.ridge_point / 3
        assert r.classify(intensity) == "memory"

    def test_decode_step_at_least_roofline_time(self, h800):
        """The LLM model's decode step (which adds host overhead)
        can never beat the pure roofline bound."""
        m = LlmInferenceModel(h800)
        spec = LLAMA_MODELS["llama-2-7B"]
        step = m.decode_step_seconds(spec, Precision.BF16)
        roofline_floor = spec.weight_bytes(Precision.BF16) \
            / (h800.dram.peak_bandwidth_gbps * 1e9)
        assert step > roofline_floor

    def test_kernel_model_matches_roofline_at_extremes(self, h800):
        km = KernelModel(h800)
        r = Roofline(h800, "fp16")
        streaming = KernelSpec(
            name="stream", block=BlockConfig(threads=256),
            num_blocks=h800.num_sms * 64,
            tc_flops_per_thread=1.0, dram_bytes_per_thread=256.0)
        est = km.estimate(streaming)
        place = r.place(streaming)
        assert place.bound == "memory"
        # achieved bandwidth within the two models' efficiency split
        assert est.achieved_gbps == pytest.approx(
            r.memory_bandwidth_tbps * 1e3, rel=0.02)


class TestFunctionalVsLayout:
    def test_fragments_cover_functional_operands(self):
        """A fragment-distributed matmul (gather per lane, compute,
        scatter) reproduces the functional engine's result."""
        from repro.tensorcore import mma_functional
        instr = MmaInstruction(DType.FP16, DType.FP32,
                               MatrixShape(16, 8, 16))
        rng = np.random.default_rng(0)
        a = rng.normal(size=(16, 16))
        b = rng.normal(size=(16, 8))
        # scatter A into 32 thread fragments, then rebuild
        lay = a_layout(instr.shape, instr.ab_type)
        frags = np.zeros((32, lay.fragment_size))
        frags[lay.lane, lay.index] = a
        a_rebuilt = frags[lay.lane, lay.index]
        assert np.array_equal(
            mma_functional(instr, a_rebuilt, b),
            mma_functional(instr, a, b))


class TestSchedulerDpxConsistency:
    def test_block_sweep_matches_scheduler_utilization(self, h800):
        from repro.dpx import DpxTimingModel, block_sweep, \
            get_dpx_function
        from repro.sm import KernelLaunch, schedule_blocks
        fn = get_dpx_function("__vimax3_s32")
        model = DpxTimingModel(h800)
        peak = model.throughput_gops(fn)
        for p in block_sweep(h800, fn, 2):
            sched = schedule_blocks(
                h800,
                KernelLaunch(p["blocks"], BlockConfig(threads=1024)),
                blocks_per_sm_override=1)
            assert p["gops"] == pytest.approx(
                peak * sched.utilization, rel=1e-9)


class TestClusterAccountingConsistency:
    def test_histogram_remote_fraction_realised(self, h800):
        """The timing model's remote-traffic assumption must match
        what the functional path actually does on uniform data."""
        from repro.dsm import Cluster, DsmHistogram, HistogramConfig
        hist = DsmHistogram(h800)
        cfg = HistogramConfig(512, 4, 128)
        data = np.random.default_rng(0).integers(0, 512, 4000)
        # run functionally on an instrumented cluster
        cluster = Cluster(h800, 4,
                          smem_bytes_per_block=cfg.bins_per_block * 4)
        bpb = cfg.bins_per_block
        for i, v in enumerate(data):
            accessor = i % 4
            owner, local_bin = divmod(int(v), bpb)
            cluster.map_shared_rank(accessor,
                                    owner).atomic_add_u32(4 * local_bin)
        measured_remote = cluster.remote_accesses \
            / cluster.total_accesses
        assert measured_remote == pytest.approx(cfg.remote_fraction,
                                                abs=0.03)


class TestEnergyThroughputConsistency:
    def test_table11_uses_table7_throughput(self, h800):
        """Table XI's efficiency = Table VII's throughput / its own
        wattage — the two experiments must share one timing source."""
        from repro.power import PowerModel
        instr = MmaInstruction(DType.FP16, DType.FP16,
                               MatrixShape(16, 8, 16))
        t = TensorCoreTimingModel(h800).mma(instr)
        rep = PowerModel(h800).report(
            op="mma", ab=instr.ab_type, cd=instr.cd_type,
            tflops=t.throughput_tflops("rand"))
        assert rep.efficiency_tflops_per_watt == pytest.approx(
            t.throughput_tflops("rand") / rep.power_watts)
