"""Failure-injection and adversarial-input tests.

Each test corrupts state or feeds hostile inputs and asserts the
system either rejects it loudly or degrades the way the architecture
would — never silently produces plausible-but-wrong results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import get_device
from repro.dsm import Cluster, DsmHistogram, HistogramConfig
from repro.memory import MemoryHierarchy, SetAssociativeCache, \
    SharedMemory
from repro.tensorcore import (
    SparseOperand,
    compress_2_4,
    decompress_2_4,
    prune_2_4,
)


class TestCorruptedSparseMetadata:
    def test_tampered_metadata_changes_result(self):
        """Flipping one metadata index must move a value to the wrong
        k position — detectable against the pruned original."""
        rng = np.random.default_rng(0)
        a = prune_2_4(rng.normal(size=(8, 16)))
        op = compress_2_4(a)
        meta = op.metadata.copy()
        # move T0's first kept element to a different in-group slot
        original = int(meta[0, 0])
        meta[0, 0] = (original + 1) % 4
        if meta[0, 0] == op.metadata[0, 1]:
            meta[0, 0] = (original + 2) % 4
        tampered = SparseOperand(op.values, meta, op.k)
        assert not np.array_equal(decompress_2_4(tampered), a)

    def test_out_of_range_metadata_rejected(self):
        with pytest.raises(ValueError):
            SparseOperand(np.ones((1, 2)),
                          np.array([[0, 7]], dtype=np.uint8), 4)

    def test_duplicate_metadata_overwrites_not_crashes(self):
        # two kept values claiming the same slot: the layout is
        # degenerate but decompression must stay well-defined
        op = SparseOperand(np.array([[1.0, 2.0]]),
                           np.array([[1, 1]], dtype=np.uint8), 4)
        out = decompress_2_4(op)
        assert out.shape == (1, 4)
        assert out[0, 1] in (1.0, 2.0)


class TestHostileMemoryPatterns:
    def test_pathological_same_set_stream_thrashes(self, h800):
        """An adversarial stream mapping every access to one set gets
        zero hits once it exceeds associativity — not an average-case
        hit rate."""
        geo = h800.cache
        c = SetAssociativeCache(geo.l1_size_bytes,
                                ways=geo.l1_associativity)
        set_stride = c.num_sets * c.line_bytes
        addrs = [i * set_stride for i in
                 range(geo.l1_associativity + 1)]
        for _ in range(4):
            for a in addrs:
                c.access(a)
        c.stats.reset()
        for _ in range(4):
            for a in addrs:
                c.access(a)
        assert c.stats.hit_rate == 0.0

    def test_oob_shared_memory_never_corrupts_neighbors(self):
        sm = SharedMemory(64)
        sm.write_u32(60, 0xAAAAAAAA)
        with pytest.raises(IndexError):
            sm.write(62, b"\x00" * 8)
        assert sm.read_u32(60) == 0xAAAAAAAA

    def test_enormous_address_is_handled(self, tiny_device):
        mh = MemoryHierarchy(tiny_device)
        res = mh.load(1 << 48)
        assert res.latency_clk > 0


class TestClusterIsolation:
    def test_writes_never_leak_across_clusters(self, h800):
        c1 = Cluster(h800, 2, smem_bytes_per_block=32)
        c2 = Cluster(h800, 2, smem_bytes_per_block=32)
        c1.map_shared_rank(0, 1).write_u32(0, 123)
        assert c2.block_smem(1).read_u32(0) == 0

    def test_histogram_rejects_negative_bins(self, h800):
        hist = DsmHistogram(h800)
        with pytest.raises(ValueError):
            hist.compute(np.array([-1]), HistogramConfig(64, 2))

    def test_histogram_zero_occupancy_is_explicit(self, h800):
        """A configuration whose blocks cannot fit must report zero
        throughput with the limiter named, not crash or extrapolate."""
        hist = DsmHistogram(h800)
        r = hist.measure(HistogramConfig(65536, 1, 1024))
        assert r.elements_per_second == 0.0
        assert r.limiter == "shared memory"


class TestDegenerateWorkloads:
    def test_all_elements_one_bin(self, h800):
        """Worst-case contention input still counts correctly."""
        hist = DsmHistogram(h800)
        data = np.zeros(500, dtype=np.int64)
        counts = hist.compute(data, HistogramConfig(16, 4))
        assert counts[0] == 500
        assert counts[1:].sum() == 0

    def test_empty_histogram(self, h800):
        hist = DsmHistogram(h800)
        counts = hist.compute(np.array([], dtype=np.int64),
                              HistogramConfig(16, 2))
        assert counts.sum() == 0

    def test_alignment_of_single_chars(self):
        from repro.dp import SmithWaterman
        sw = SmithWaterman(match=5, mismatch=-1, gap=1)
        assert sw.score("A", "A") == 5
        assert sw.score("A", "T") == 0

    def test_power_cap_below_idle(self, h800):
        """A cap below idle power throttles to (almost) zero rather
        than producing negative scales."""
        from repro.isa.dtypes import DType
        from repro.power import PowerModel
        broken = h800.with_overrides(power_cap_watts=10.0)
        pm = PowerModel(broken)
        s = pm.throttle_scale(op="wgmma", ab=DType.FP16,
                              cd=DType.FP32, tflops=700.0)
        assert 0.0 <= s < 0.05
