"""Tests for the warp coalescing analyser."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.coalescing import (
    SECTOR_BYTES,
    analyze_warp_access,
    efficiency_vs_stride,
    strided_access,
)


class TestBasicPatterns:
    def test_unit_stride_is_perfect(self):
        r = strided_access(4)
        assert r.sectors == 4            # 128 B / 32 B
        assert r.perfectly_coalesced
        assert r.efficiency == 1.0

    def test_float4_unit_stride(self):
        r = strided_access(16, bytes_per_lane=16)
        assert r.sectors == 16
        assert r.efficiency == 1.0

    def test_broadcast_single_sector(self):
        r = analyze_warp_access([128] * 32)
        assert r.sectors == 1
        assert r.efficiency == 4.0       # 128 requested / 32 moved

    def test_fully_scattered(self):
        # one 4-byte word per page: 32 sectors for 128 bytes
        r = analyze_warp_access([i * 4096 for i in range(32)])
        assert r.sectors == 32
        assert r.efficiency == pytest.approx(4 / 32)

    def test_stride_curve_decays_to_floor(self):
        curve = efficiency_vs_stride([4, 8, 16, 32, 64, 128])
        assert curve[4] == 1.0
        assert curve[8] == pytest.approx(0.5)
        assert curve[32] == pytest.approx(4 / 32)
        assert curve[128] == pytest.approx(4 / 32)
        vals = [curve[s] for s in (4, 8, 16, 32)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_misaligned_access_pays_extra_sector(self):
        aligned = strided_access(4, base=0)
        misaligned = strided_access(4, base=2)
        assert misaligned.sectors == aligned.sectors + 1
        assert misaligned.efficiency < 1.0

    def test_straddling_element(self):
        # an 8-byte element starting 4 bytes before a boundary
        r = analyze_warp_access([28], bytes_per_lane=8)
        assert r.sectors == 2


class TestValidation:
    def test_lane_cap(self):
        with pytest.raises(ValueError):
            analyze_warp_access([0] * 33)

    def test_width_whitelist(self):
        with pytest.raises(ValueError):
            analyze_warp_access([0], bytes_per_lane=3)

    def test_negative_address(self):
        with pytest.raises(ValueError):
            analyze_warp_access([-4])

    def test_negative_stride(self):
        with pytest.raises(ValueError):
            strided_access(-1)

    def test_empty_access(self):
        r = analyze_warp_access([])
        assert r.sectors == 0
        assert r.efficiency == 0.0


class TestProperties:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=32),
           st.sampled_from([1, 2, 4, 8, 16]))
    def test_sector_count_bounds(self, addrs, width):
        r = analyze_warp_access(addrs, bytes_per_lane=width)
        # at least enough sectors for the span of one element, at most
        # one-per-lane plus straddles
        assert 1 <= r.sectors <= len(addrs) * (1 + width // 32 + 1)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 512), st.sampled_from([1, 2, 4, 8, 16]))
    def test_efficiency_bounded_for_distinct_strides(self, stride,
                                                     width):
        r = strided_access(stride, bytes_per_lane=width)
        if stride >= width:   # non-overlapping requests
            assert r.efficiency <= 1.0 + 1e-12
        assert r.efficiency >= 0.0

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 1 << 16))
    def test_translation_invariance_when_aligned(self, pages):
        base = pages * SECTOR_BYTES
        assert strided_access(4, base=base).sectors \
            == strided_access(4, base=0).sectors
