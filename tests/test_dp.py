"""Tests for the DPX dynamic-programming library."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import get_device
from repro.dp import (
    FloydWarshall,
    NeedlemanWunsch,
    SmithWaterman,
    estimate_kernel_time,
)
from repro.dp.alignment import (
    reference_needleman_wunsch,
    reference_smith_waterman,
)
from repro.dp.graph import INF

_DNA = st.text(alphabet="ACGT", min_size=1, max_size=24)


class TestSmithWaterman:
    def test_identical_sequences(self):
        sw = SmithWaterman(match=3, mismatch=-2, gap=4)
        assert sw.score("ACGT", "ACGT") == 12

    def test_disjoint_sequences(self):
        sw = SmithWaterman()
        # no positive-scoring local alignment exists
        assert sw.score("AAAA", "TTTT") == 0

    def test_embedded_motif(self):
        sw = SmithWaterman(match=2, mismatch=-3, gap=5)
        assert sw.score("TTTTACGTACGTTTTT", "GGACGTACGGG") >= 2 * 8 - 5

    def test_matrix_and_accounting(self):
        sw = SmithWaterman()
        res = sw.align("ACGT", "ACG", keep_matrix=True)
        assert res.matrix.shape == (5, 4)
        assert res.cells == 12
        assert res.dpx_calls == 2 * res.cells
        assert res.dpx_calls_per_cell == 2.0

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            SmithWaterman().score("", "ACGT")

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            SmithWaterman(gap=-1)

    @settings(max_examples=60, deadline=None)
    @given(_DNA, _DNA)
    def test_matches_reference(self, a, b):
        assert SmithWaterman().score(a, b) \
            == reference_smith_waterman(a, b)

    @settings(max_examples=40, deadline=None)
    @given(_DNA, _DNA)
    def test_symmetric(self, a, b):
        sw = SmithWaterman()
        assert sw.score(a, b) == sw.score(b, a)

    @settings(max_examples=40, deadline=None)
    @given(_DNA)
    def test_self_alignment_is_max(self, a):
        sw = SmithWaterman(match=3, mismatch=-2, gap=4)
        assert sw.score(a, a) == 3 * len(a)


class TestNeedlemanWunsch:
    def test_identical(self):
        nw = NeedlemanWunsch(match=1, mismatch=-1, gap=1)
        assert nw.score("GATTACA", "GATTACA") == 7

    def test_pure_gap_cost(self):
        nw = NeedlemanWunsch(match=1, mismatch=-1, gap=2)
        # aligning X against XYY forces two gaps
        assert nw.score("A", "AGG") == 1 - 2 * 2

    def test_global_can_be_negative(self):
        nw = NeedlemanWunsch(match=1, mismatch=-1, gap=1)
        assert nw.score("AAAA", "TTTT") < 0

    @settings(max_examples=60, deadline=None)
    @given(_DNA, _DNA)
    def test_matches_reference(self, a, b):
        assert NeedlemanWunsch().score(a, b) \
            == reference_needleman_wunsch(a, b)

    @settings(max_examples=40, deadline=None)
    @given(_DNA, _DNA)
    def test_local_at_least_global_when_nonneg(self, a, b):
        # SW ≥ max(0, NW): dropping prefixes/suffixes never hurts
        sw = SmithWaterman().score(a, b)
        nw = NeedlemanWunsch().score(a, b)
        assert sw >= max(0, nw)


class TestFloydWarshall:
    def _reference(self, w):
        n = w.shape[0]
        d = np.minimum(w.astype(np.float64), INF)
        np.fill_diagonal(d, 0)
        for k in range(n):
            d = np.minimum(d, d[:, k][:, None] + d[k, :][None, :])
        return d

    def test_path_through_intermediate(self):
        w = FloydWarshall.from_edges(3, [(0, 1, 2), (1, 2, 3)])
        res = FloydWarshall().run(w)
        assert res.distance(0, 2) == 5
        assert res.distance(2, 0) == 5
        assert res.distance(0, 0) == 0

    def test_unreachable(self):
        w = FloydWarshall.from_edges(3, [(0, 1, 1)])
        res = FloydWarshall().run(w)
        assert res.distance(0, 2) is None

    def test_parallel_edges_take_min(self):
        w = FloydWarshall.from_edges(2, [(0, 1, 9), (0, 1, 4)])
        assert FloydWarshall().run(w).distance(0, 1) == 4

    def test_dpx_call_count(self):
        w = FloydWarshall.from_edges(4, [(0, 1, 1)])
        res = FloydWarshall().run(w)
        assert res.dpx_calls == 4 ** 3

    def test_validation(self):
        fw = FloydWarshall()
        with pytest.raises(ValueError):
            fw.run(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            fw.run(np.array([[0, -1], [1, 0]]))
        with pytest.raises(ValueError):
            FloydWarshall.from_edges(2, [(0, 1, -5)])

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 8), st.data())
    def test_matches_reference(self, n, data):
        rng_edges = data.draw(st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                      st.integers(0, 50)),
            max_size=20))
        w = FloydWarshall.from_edges(n, rng_edges)
        got = FloydWarshall().run(w).distances
        ref = self._reference(w)
        assert np.array_equal(np.minimum(got, INF), np.minimum(ref,
                                                               INF))

    def test_against_networkx(self):
        nx = pytest.importorskip("networkx")
        g = nx.gnm_random_graph(12, 30, seed=3)
        for u, v in g.edges:
            g[u][v]["weight"] = (u * v) % 7 + 1
        w = FloydWarshall.from_edges(
            12, [(u, v, g[u][v]["weight"]) for u, v in g.edges])
        res = FloydWarshall().run(w)
        ref = dict(nx.all_pairs_dijkstra_path_length(g))
        for u in range(12):
            for v in range(12):
                expect = ref[u].get(v)
                assert res.distance(u, v) == expect


class TestKernelCost:
    def test_hopper_faster(self):
        calls = 10 ** 6
        h = estimate_kernel_time(get_device("H800"), calls)
        a = estimate_kernel_time(get_device("A100"), calls)
        assert h.hardware_dpx and not a.hardware_dpx
        # fused relu op: ~3.7× device-level speedup (hw 1 instr vs
        # 3-instruction emulation, plus clocks)
        assert h.seconds < a.seconds / 3

    def test_zero_calls(self):
        e = estimate_kernel_time(get_device("H800"), 0)
        assert e.seconds == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_kernel_time(get_device("H800"), -1)
        with pytest.raises(ValueError):
            estimate_kernel_time(get_device("H800"), 10,
                                 utilization=0.0)
