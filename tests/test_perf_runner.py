"""Determinism and caching semantics of the parallel runner."""

from __future__ import annotations

from repro.core import list_experiments, run_all, run_experiment
from repro.perf import ResultCache, run_experiments

SUBSET = ["table03_devices", "table06_sass", "fig06_dpx_latency"]


def _renders(results):
    return {name: res.render() for name, res in results.items()}


class TestDeterminism:
    def test_parallel_full_suite_identical_to_serial(self):
        """The acceptance criterion: ``run_all(jobs=4)`` produces the
        same rendered tables and checks as the serial loop."""
        serial = run_all()
        parallel = run_all(jobs=4)
        assert list(parallel) == list(serial)
        assert _renders(parallel) == _renders(serial)

    def test_subset_order_is_request_order(self):
        report = run_experiments(SUBSET[::-1], jobs=2)
        assert list(report.results) == SUBSET[::-1]

    def test_subset_matches_run_experiment(self):
        report = run_experiments(SUBSET, jobs=2)
        for name in SUBSET:
            assert report.results[name].render() == \
                run_experiment(name).render()


class TestCachedRuns:
    def test_second_run_all_hits_and_matches(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        first = run_experiments(SUBSET, cache=cache)
        warm = ResultCache(tmp_path / "rc")
        second = run_experiments(SUBSET, cache=warm)
        assert warm.stats.hits == len(SUBSET)
        assert warm.stats.misses == 0
        assert _renders(second.results) == _renders(first.results)
        assert all(t.cached for t in second.profiler.timings)

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        run_experiments(SUBSET, jobs=2, cache=ResultCache(tmp_path / "rc"))
        warm = ResultCache(tmp_path / "rc")
        run_experiments(SUBSET, cache=warm)
        assert warm.stats.hits == len(SUBSET)

    def test_profiler_covers_every_experiment(self, tmp_path):
        report = run_experiments(SUBSET,
                                 cache=ResultCache(tmp_path / "rc"))
        assert [t.name for t in report.profiler.timings] == SUBSET
        assert report.profiler.cache_misses == len(SUBSET)
        assert report.passed


class TestValidation:
    def test_unknown_name_fails_fast(self):
        import pytest

        with pytest.raises(KeyError, match="nope"):
            run_experiments(["table99_nope"])

    def test_default_runs_everything(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        report = run_experiments(cache=cache)
        assert list(report.results) == list_experiments()


def _square(x):
    """Module-level so the pool can pickle it."""
    return x * x


class TestWorkStealing:
    """parallel_imap / parallel_map(unordered=True): the
    work-stealing dispatch yields every indexed result exactly once
    and re-merges into input order."""

    ITEMS = list(range(23))

    def test_parallel_imap_serial_is_input_order(self):
        from repro.perf import parallel_imap

        pairs = list(parallel_imap(_square, self.ITEMS, jobs=1))
        assert pairs == [(i, i * i) for i in self.ITEMS]

    def test_parallel_imap_fanned_covers_every_index(self):
        from repro.perf import parallel_imap

        pairs = list(parallel_imap(_square, self.ITEMS, jobs=3))
        assert sorted(pairs) == [(i, i * i) for i in self.ITEMS]

    def test_unordered_map_matches_ordered(self):
        from repro.perf import parallel_map

        ordered = parallel_map(_square, self.ITEMS, jobs=2)
        stolen = parallel_map(_square, self.ITEMS, jobs=2,
                              unordered=True)
        assert stolen == ordered == [i * i for i in self.ITEMS]

    def test_empty_and_single_item_short_circuit(self):
        from repro.perf import parallel_imap, parallel_map

        assert list(parallel_imap(_square, [], jobs=4)) == []
        assert parallel_map(_square, [7], jobs=4,
                            unordered=True) == [49]
