"""Tests for the memory throughput model (Table V)."""

from __future__ import annotations

import pytest

from repro.memory import MemoryThroughputModel, measure_throughputs

#: Table V reference values
PAPER_TABLE5 = {
    "RTX4090": {"l1": {"FP32": 63.7, "FP64": 13.3, "FP32.v4": 121.2},
                "l2": {"FP32": 1622.2, "FP64": 1500.8,
                       "FP32.v4": 1708.0},
                "global": 929.8, "l2_vs_global": 4.67},
    "A100": {"l1": {"FP32": 99.5, "FP64": 120.0, "FP32.v4": 106.8},
             "l2": {"FP32": 1853.7, "FP64": 1990.4, "FP32.v4": 2007.9},
             "global": 1407.2, "l2_vs_global": 2.01},
    "H800": {"l1": {"FP32": 125.8, "FP64": 16.0, "FP32.v4": 124.1},
             "l2": {"FP32": 4472.3, "FP64": 1817.3, "FP32.v4": 3942.4},
             "global": 1861.5, "l2_vs_global": 4.23},
}


class TestLimiters:
    def test_fp32_is_issue_limited_on_4090(self, rtx4090):
        m = MemoryThroughputModel(rtx4090)
        assert m.l1("FP32").limiter == "LSU issue"

    def test_v4_is_width_limited(self, any_device):
        m = MemoryThroughputModel(any_device)
        assert m.l1("FP32.v4").limiter == "L1 width"

    def test_fp64_alu_limited_on_nerfed_parts(self, rtx4090, h800):
        for d in (rtx4090, h800):
            assert MemoryThroughputModel(d).l1("FP64").limiter \
                == "FP64 unit"

    def test_fp64_not_alu_limited_on_a100(self, a100):
        assert MemoryThroughputModel(a100).l1("FP64").limiter \
            != "FP64 unit"

    def test_h800_l2_fp64_collapses_to_alus(self, h800):
        m = MemoryThroughputModel(h800)
        r = m.l2("FP64")
        assert r.limiter == "FP64 units"
        assert r.value == pytest.approx(16.0 * h800.num_sms, rel=0.01)

    def test_shared_is_bank_width(self, any_device):
        r = MemoryThroughputModel(any_device).shared()
        assert r.value == 128.0

    def test_unknown_pattern(self, h800):
        with pytest.raises(ValueError):
            MemoryThroughputModel(h800).l1("FP128")


class TestTable5Values:
    @pytest.mark.parametrize("device_name", sorted(PAPER_TABLE5))
    def test_l1_values(self, device_name):
        from repro.arch import get_device
        m = MemoryThroughputModel(get_device(device_name))
        for pattern, expect in PAPER_TABLE5[device_name]["l1"].items():
            assert m.l1(pattern).value == pytest.approx(expect,
                                                        rel=0.05), \
                (device_name, pattern)

    @pytest.mark.parametrize("device_name", sorted(PAPER_TABLE5))
    def test_l2_values(self, device_name):
        from repro.arch import get_device
        m = MemoryThroughputModel(get_device(device_name))
        for pattern, expect in PAPER_TABLE5[device_name]["l2"].items():
            assert m.l2(pattern).value == pytest.approx(expect,
                                                        rel=0.05), \
                (device_name, pattern)

    @pytest.mark.parametrize("device_name", sorted(PAPER_TABLE5))
    def test_global_bandwidth(self, device_name):
        from repro.arch import get_device
        m = MemoryThroughputModel(get_device(device_name))
        expect = PAPER_TABLE5[device_name]["global"]
        assert m.global_memory().value == pytest.approx(expect,
                                                        rel=0.02)

    @pytest.mark.parametrize("device_name", sorted(PAPER_TABLE5))
    def test_l2_vs_global_ratio(self, device_name):
        from repro.arch import get_device
        m = MemoryThroughputModel(get_device(device_name))
        expect = PAPER_TABLE5[device_name]["l2_vs_global"]
        assert m.l2_vs_global_ratio() == pytest.approx(expect, rel=0.1)

    def test_percent_of_peak_around_ninety(self, any_device):
        m = MemoryThroughputModel(any_device)
        assert 0.88 <= m.theoretical_fraction() <= 0.94

    def test_measure_throughputs_keys(self, h800):
        out = measure_throughputs(h800)
        assert "L1 FP32.v4 (byte/clk/SM)" in out
        assert "Global (GB/s)" in out
        assert "L2 vs. Global" in out


class TestMechanisms:
    def test_pure_read_faster_than_mixed(self, h800):
        m = MemoryThroughputModel(h800)
        mixed = m.global_memory(reads_per_write=1).value
        mostly_read = m.global_memory(reads_per_write=9).value
        assert mostly_read > mixed

    def test_h800_l2_beats_others(self):
        from repro.arch import get_device
        vals = {
            d: MemoryThroughputModel(get_device(d)).l2("FP32").value
            for d in PAPER_TABLE5
        }
        assert vals["H800"] > 2 * vals["A100"]
        assert vals["H800"] > 2.4 * vals["RTX4090"]
