"""Tests for the async-copy pipeline model (Tables XIII/XIV) and TMA."""

from __future__ import annotations

import pytest

from repro.arch import get_device
from repro.asynccopy import (
    AsyncCopyConfig,
    CopyVariant,
    TiledMatmulModel,
    TmaModel,
    benchmark_table,
)
from repro.isa.lowering import UnsupportedInstruction
from repro.isa.memory_ops import TmaCopy

SYNC, ASYNC = CopyVariant.SYNC, CopyVariant.ASYNC


class TestConfig:
    def test_derived_quantities(self):
        cfg = AsyncCopyConfig(16, 4, SYNC)
        assert cfg.threads == 256
        assert cfg.warps == 8
        assert cfg.flops_per_step == 2 * 16 ** 3
        assert cfg.copy_bytes_per_step == 2 * 256 * 4

    def test_async_doubles_smem(self):
        s = AsyncCopyConfig(32, 1, SYNC)
        a = AsyncCopyConfig(32, 1, ASYNC, pipeline_stages=2)
        assert a.smem_bytes_per_block == 2 * s.smem_bytes_per_block

    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncCopyConfig(7, 1, SYNC)
        with pytest.raises(ValueError):
            AsyncCopyConfig(8, 0, SYNC)
        with pytest.raises(ValueError):
            AsyncCopyConfig(8, 1, ASYNC, pipeline_stages=1)


class TestModelShapes:
    def test_async_wins_at_small_blocks(self, h800):
        m = TiledMatmulModel(h800)
        for nb in (1, 2, 4, 8):
            a = m.throughput_gflops(AsyncCopyConfig(8, nb, ASYNC))
            s = m.throughput_gflops(AsyncCopyConfig(8, nb, SYNC))
            assert a > 1.2 * s, nb

    def test_async_loses_at_32x32_h800(self, h800):
        m = TiledMatmulModel(h800)
        a = m.throughput_gflops(AsyncCopyConfig(32, 16, ASYNC))
        s = m.throughput_gflops(AsyncCopyConfig(32, 16, SYNC))
        assert a < s

    def test_monotone_in_blocks(self, any_device):
        m = TiledMatmulModel(any_device)
        for variant in (SYNC, ASYNC):
            vals = [m.throughput_gflops(AsyncCopyConfig(16, nb, variant))
                    for nb in (1, 2, 4, 8, 16, 32)]
            assert all(x <= y * 1.001 for x, y in zip(vals, vals[1:]))

    def test_8x8_saturates_at_dram_cap(self, h800):
        m = TiledMatmulModel(h800)
        cfg = AsyncCopyConfig(8, 32, ASYNC)
        achieved = m.flops_per_clk_sm(cfg)
        assert achieved == pytest.approx(
            m.dram_cap_flops_clk(cfg) * 0.98, rel=0.01)

    def test_32x32_saturates_at_smem_cap(self, h800):
        m = TiledMatmulModel(h800)
        cfg = AsyncCopyConfig(32, 32, ASYNC)
        assert m.flops_per_clk_sm(cfg) == pytest.approx(
            m.smem_cap_flops_clk() * 0.98, rel=0.01)

    def test_resident_blocks_capped_by_occupancy(self, h800):
        m = TiledMatmulModel(h800)
        # 32×32 = 1024 threads → at most 2 resident on H800
        assert m.resident_blocks(AsyncCopyConfig(32, 32, SYNC)) == 2

    def test_step_breakdown_totals(self, h800):
        m = TiledMatmulModel(h800)
        bd = m.step_breakdown(AsyncCopyConfig(16, 1, SYNC))
        assert bd.total_clk == pytest.approx(
            bd.compute_clk + bd.copy_issue_clk + bd.overhead_clk)
        assert bd.compute_clk == pytest.approx(2 * 16 ** 3 * 4 / 128)

    def test_fallback_path_for_uncalibrated_arch(self, rtx4090):
        # Ada is not in the calibration table → structural fallback
        m = TiledMatmulModel(rtx4090)
        a = m.throughput_gflops(AsyncCopyConfig(8, 4, ASYNC))
        s = m.throughput_gflops(AsyncCopyConfig(8, 4, SYNC))
        assert a > s > 0


class TestBenchmarkTable:
    def test_h800_gains_match_paper_shape(self, h800):
        rows = {r["block"]: r for r in benchmark_table(h800)}
        assert rows["8x8"]["perf_gain"] > 0.25
        assert rows["8x8"]["perf_gain"] > rows["16x16"]["perf_gain"] \
            > rows["32x32"]["perf_gain"]
        assert rows["32x32"]["perf_gain"] < 0.02

    def test_a100_gains_positive_but_smaller(self, a100, h800):
        a_rows = {r["block"]: r for r in benchmark_table(a100)}
        h_rows = {r["block"]: r for r in benchmark_table(h800)}
        assert a_rows["8x8"]["perf_gain"] > 0.05
        assert a_rows["8x8"]["perf_gain"] < h_rows["8x8"]["perf_gain"]

    def test_magnitudes_track_paper(self, h800):
        rows = {r["block"]: r for r in benchmark_table(h800)}
        # paper: 8×8 async @1 = 516.69; 32×32 plateau ≈ 6.6 TF
        assert rows["8x8"]["AsyncPipe"][0] == pytest.approx(517, rel=0.1)
        assert rows["32x32"]["SyncShare"][-1] == pytest.approx(
            6631, rel=0.1)


class TestTma:
    def test_hopper_only(self, a100, h800):
        with pytest.raises(UnsupportedInstruction):
            TmaModel(a100)
        TmaModel(h800)

    def test_transfer_cost(self, h800):
        m = TmaModel(h800)
        t = m.transfer(TmaCopy(tile_bytes=16384))
        assert t.issuing_instructions == 1
        assert t.cycles > 16384 / 128
        assert t.bytes_per_clk > 0

    def test_bigger_tiles_amortize_overhead(self, h800):
        m = TmaModel(h800)
        small = m.transfer(TmaCopy(tile_bytes=1024))
        big = m.transfer(TmaCopy(tile_bytes=65536))
        assert big.bytes_per_clk > small.bytes_per_clk

    def test_issue_reduction(self, h800):
        m = TmaModel(h800)
        assert m.cp_async_equivalent_instructions(16384) == 32
        assert m.issue_reduction(TmaCopy(tile_bytes=16384)) == 32
