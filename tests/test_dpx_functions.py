"""Tests for DPX intrinsic semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dpx import (
    DPX_FUNCTIONS,
    get_dpx_function,
    pack_s16x2,
    unpack_s16x2,
)

s32 = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
s16 = st.integers(min_value=-(2 ** 15), max_value=2 ** 15 - 1)
u32 = st.integers(min_value=0, max_value=2 ** 32 - 1)


class TestPacking:
    def test_roundtrip(self):
        v = pack_s16x2(-5, 1000)
        hi, lo = unpack_s16x2(v)
        assert (int(hi), int(lo)) == (-5, 1000)

    def test_known_value(self):
        assert int(pack_s16x2(1, 2)) == 0x00010002
        assert int(pack_s16x2(-1, 0)) == -65536  # 0xFFFF0000 as s32

    @settings(max_examples=200, deadline=None)
    @given(s16, s16)
    def test_roundtrip_property(self, hi, lo):
        h, l = unpack_s16x2(pack_s16x2(hi, lo))
        assert (int(h), int(l)) == (hi, lo)


class TestScalarSemantics:
    def test_vimax_vimin(self):
        f = get_dpx_function("__vimax_s32")
        assert int(f(3, -7)) == 3
        g = get_dpx_function("__vimin_s32")
        assert int(g(3, -7)) == -7

    def test_max3_relu(self):
        f = get_dpx_function("__vimax3_s32_relu")
        assert int(f(-5, -2, -9)) == 0
        assert int(f(-5, 7, -9)) == 7

    def test_min3(self):
        f = get_dpx_function("__vimin3_s32")
        assert int(f(4, -2, 9)) == -2

    def test_viaddmax_semantics(self):
        f = get_dpx_function("__viaddmax_s32")
        # max(s1+s2, s3) — the paper's running example
        assert int(f(2, 3, 10)) == 10
        assert int(f(20, 3, 10)) == 23

    def test_viaddmax_wraps_like_hardware(self):
        f = get_dpx_function("__viaddmax_s32")
        assert int(f(2 ** 31 - 1, 1, 0)) == 0  # overflow wraps negative

    def test_viaddmax_u32_unsigned_compare(self):
        f = get_dpx_function("__viaddmax_u32")
        assert int(f(2 ** 32 - 2, 1, 5)) == 2 ** 32 - 1
        assert int(f(2 ** 32 - 1, 1, 5)) == 5  # wrapped to 0

    def test_vibmax_returns_predicate(self):
        f = get_dpx_function("__vibmax_s32")
        v, pred = f(np.array([3, -1]), np.array([2, 5]))
        assert list(v) == [3, 5]
        assert list(pred) == [True, False]

    def test_arity_checked(self):
        with pytest.raises(TypeError):
            get_dpx_function("__vimax_s32")(1, 2, 3)

    def test_unknown_function(self):
        with pytest.raises(KeyError):
            get_dpx_function("__vimax_s64")


class TestPackedSemantics:
    def test_lanes_independent(self):
        f = get_dpx_function("__vimax3_s16x2")
        a = pack_s16x2(10, -10)
        b = pack_s16x2(-5, 20)
        c = pack_s16x2(0, 0)
        hi, lo = unpack_s16x2(f(a, b, c))
        assert (int(hi), int(lo)) == (10, 20)

    def test_relu_per_lane(self):
        f = get_dpx_function("__vimax3_s16x2_relu")
        a = pack_s16x2(-9, 5)
        b = pack_s16x2(-3, -1)
        c = pack_s16x2(-7, 2)
        hi, lo = unpack_s16x2(f(a, b, c))
        assert (int(hi), int(lo)) == (0, 5)

    def test_viaddmax_s16x2_wraps_16bit(self):
        f = get_dpx_function("__viaddmax_s16x2")
        a = pack_s16x2(32767, 0)
        b = pack_s16x2(1, 0)
        c = pack_s16x2(-100, 3)
        hi, lo = unpack_s16x2(f(a, b, c))
        assert int(hi) == -100   # 32767+1 wraps to -32768 < -100
        assert int(lo) == 3

    @settings(max_examples=200, deadline=None)
    @given(s16, s16, s16, s16, s16, s16)
    def test_packed_max3_matches_scalar(self, a0, a1, b0, b1, c0, c1):
        f = get_dpx_function("__vimax3_s16x2")
        hi, lo = unpack_s16x2(f(pack_s16x2(a0, a1), pack_s16x2(b0, b1),
                                pack_s16x2(c0, c1)))
        assert int(hi) == max(a0, b0, c0)
        assert int(lo) == max(a1, b1, c1)


class TestHypothesisScalar:
    @settings(max_examples=200, deadline=None)
    @given(s32, s32, s32)
    def test_max3_reference(self, a, b, c):
        f = get_dpx_function("__vimax3_s32")
        assert int(f(a, b, c)) == max(a, b, c)

    @settings(max_examples=200, deadline=None)
    @given(s32, s32, s32)
    def test_viaddmax_reference(self, a, b, c):
        f = get_dpx_function("__viaddmax_s32")
        wrapped = (a + b + 2 ** 31) % 2 ** 32 - 2 ** 31
        assert int(f(a, b, c)) == max(wrapped, c)

    @settings(max_examples=200, deadline=None)
    @given(s32, s32, s32)
    def test_relu_clamps(self, a, b, c):
        f = get_dpx_function("__vimax3_s32_relu")
        assert int(f(a, b, c)) == max(a, b, c, 0)


class TestRegistryMetadata:
    def test_all_have_lowerings(self):
        for fn in DPX_FUNCTIONS.values():
            assert fn.hw_instruction_count >= 1
            assert fn.emu_instruction_count >= fn.hw_instruction_count
            assert 1 <= fn.emu_critical_path <= fn.emu_instruction_count

    def test_packed_emulation_is_expensive(self):
        simple = DPX_FUNCTIONS["__vimax_s32"]
        packed = DPX_FUNCTIONS["__viaddmax_s16x2_relu"]
        assert packed.emu_instruction_count \
            >= 10 * simple.emu_instruction_count

    def test_vibmax_marked_unmeasurable(self):
        assert DPX_FUNCTIONS["__vibmax_s32"].emu_optimized_away
        assert not DPX_FUNCTIONS["__vimax3_s32"].emu_optimized_away

    def test_family_coverage(self):
        names = set(DPX_FUNCTIONS)
        assert {"__vimax_s32", "__vimin_s32", "__vimax3_s32",
                "__vimin3_s32", "__viaddmax_s32", "__viaddmin_s32",
                "__viaddmax_u32", "__vibmax_s32",
                "__vimax3_s16x2", "__viaddmax_s16x2_relu"} <= names
