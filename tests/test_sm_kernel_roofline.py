"""Tests for the generic kernel model and roofline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import get_device
from repro.sm import BlockConfig, KernelModel, KernelSpec, Roofline


def _spec(**kw):
    defaults = dict(
        name="k",
        block=BlockConfig(threads=256, regs_per_thread=32),
        num_blocks=1024,
    )
    defaults.update(kw)
    return KernelSpec(**defaults)


class TestKernelSpec:
    def test_totals(self):
        s = _spec(flops_per_thread=100, dram_bytes_per_thread=50)
        assert s.total_threads == 1024 * 256
        assert s.total_flops == 100 * s.total_threads
        assert s.arithmetic_intensity == 2.0

    def test_pure_compute_intensity(self):
        s = _spec(flops_per_thread=10)
        assert s.arithmetic_intensity == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            _spec(num_blocks=0)
        with pytest.raises(ValueError):
            _spec(flops_per_thread=-1)
        with pytest.raises(ValueError):
            _spec(memory_ilp=0)


class TestKernelModel:
    def test_streaming_kernel_is_dram_bound(self, h800):
        m = KernelModel(h800)
        est = m.estimate(_spec(dram_bytes_per_thread=64,
                               flops_per_thread=4,
                               num_blocks=h800.num_sms * 64))
        assert est.limiter == "DRAM bandwidth"
        assert est.achieved_gbps == pytest.approx(
            h800.dram.effective_bandwidth_gbps(0.8), rel=0.02)

    def test_gemm_like_kernel_is_tc_bound(self, h800):
        m = KernelModel(h800)
        est = m.estimate(_spec(tc_flops_per_thread=1e5,
                               dram_bytes_per_thread=8,
                               num_blocks=h800.num_sms * 64))
        assert est.limiter == "tensor cores"
        assert est.achieved_tflops == pytest.approx(
            0.9 * h800.tc_peak_tflops("fp16"), rel=0.02)

    def test_underpopulated_kernel_is_latency_bound(self, h800):
        m = KernelModel(h800)
        est = m.estimate(_spec(
            block=BlockConfig(threads=32, regs_per_thread=255),
            num_blocks=h800.num_sms,
            dram_bytes_per_thread=512, memory_ilp=1.0,
        ))
        assert est.limiter == "memory latency"

    def test_partial_wave_stretches_time(self, h800):
        m = KernelModel(h800)
        full = m.estimate(_spec(
            block=BlockConfig(threads=1024, regs_per_thread=32),
            num_blocks=2 * h800.num_sms,
            flops_per_thread=1e4))
        straggler = m.estimate(_spec(
            block=BlockConfig(threads=1024, regs_per_thread=32),
            num_blocks=2 * h800.num_sms + 1,
            flops_per_thread=1e4))
        assert straggler.seconds > full.seconds
        assert straggler.waves == full.waves + 1

    def test_unlaunchable_kernel(self, h800):
        m = KernelModel(h800)
        with pytest.raises(ValueError, match="cannot launch"):
            m.estimate(_spec(block=BlockConfig(
                threads=128, smem_bytes=10 ** 7)))

    def test_resource_breakdown_complete(self, a100):
        est = KernelModel(a100).estimate(
            _spec(flops_per_thread=10, dram_bytes_per_thread=10,
                  smem_bytes_per_thread=10, tc_flops_per_thread=10))
        assert set(est.resource_seconds) == {
            "FP32 pipes", "tensor cores", "DRAM bandwidth",
            "shared memory", "memory latency"}
        assert est.seconds >= max(est.resource_seconds.values())


class TestRoofline:
    def test_ridge_points_ordered_by_balance(self):
        """H800 has the highest compute-to-bandwidth ratio at FP16."""
        ridges = {d: Roofline(get_device(d), "fp16").ridge_point
                  for d in ("A100", "RTX4090", "H800")}
        assert ridges["H800"] > ridges["A100"]
        assert ridges["RTX4090"] > ridges["A100"]

    def test_fp8_doubles_the_flat_roof(self, h800):
        fp16 = Roofline(h800, "fp16")
        fp8 = Roofline(h800, "fp8")
        assert fp8.peak_tflops == pytest.approx(2 * fp16.peak_tflops)
        assert fp8.ridge_point == pytest.approx(2 * fp16.ridge_point)

    def test_achievable_below_ridge_is_linear(self, h800):
        r = Roofline(h800)
        i = r.ridge_point / 4
        assert r.achievable_tflops(i) == pytest.approx(
            i * r.memory_bandwidth_tbps)
        assert r.classify(i) == "memory"

    def test_achievable_above_ridge_is_flat(self, h800):
        r = Roofline(h800)
        assert r.achievable_tflops(10 * r.ridge_point) \
            == r.peak_tflops
        assert r.classify(10 * r.ridge_point) == "compute"

    def test_place_kernel(self, h800):
        r = Roofline(h800)
        decode = KernelSpec(
            name="llm-decode", block=BlockConfig(threads=256),
            num_blocks=1024, tc_flops_per_thread=100,
            dram_bytes_per_thread=200)
        p = r.place(decode)
        assert p.bound == "memory"
        gemm = KernelSpec(
            name="gemm", block=BlockConfig(threads=256),
            num_blocks=1024, tc_flops_per_thread=1e6,
            dram_bytes_per_thread=10)
        assert r.place(gemm).bound == "compute"

    def test_pure_compute_placement(self, h800):
        r = Roofline(h800)
        s = KernelSpec(name="alu", block=BlockConfig(threads=64),
                       num_blocks=8, flops_per_thread=100)
        p = r.place(s)
        assert p.bound == "compute"
        assert p.achievable_tflops == r.peak_tflops

    def test_negative_intensity_rejected(self, h800):
        with pytest.raises(ValueError):
            Roofline(h800).achievable_tflops(-1)

    def test_curve_sampling(self, h800):
        r = Roofline(h800)
        c = r.curve([0.1, 1.0, 1000.0])
        assert c[0.1] < c[1.0] <= c[1000.0] == r.peak_tflops

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0, max_value=1e5))
    def test_achievable_monotone_and_bounded(self, i):
        r = Roofline(get_device("H800"))
        v = r.achievable_tflops(i)
        assert 0 <= v <= r.peak_tflops
