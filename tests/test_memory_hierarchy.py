"""Tests for the memory hierarchy façade, TLB and DRAM channel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.memory_ops import CacheOp
from repro.memory import DramChannel, MemLevel, MemoryHierarchy, Tlb


class TestTlb:
    def test_miss_then_hit(self):
        t = Tlb(entries=4)
        assert not t.access(0)
        assert t.access(0)
        assert t.access(100)  # same 2 MiB page

    def test_lru_eviction(self):
        t = Tlb(entries=2, page_bytes=4096)
        t.access(0)
        t.access(4096)
        t.access(0)          # refresh page 0
        t.access(8192)       # evicts page 1
        assert t.access(0)
        assert not t.access(4096)

    def test_warm(self):
        t = Tlb(page_bytes=4096)
        t.warm(0, 3 * 4096)
        assert t.resident_pages == 3
        assert t.access(2 * 4096)

    def test_flush(self):
        t = Tlb()
        t.access(0)
        t.flush()
        assert t.resident_pages == 0 and t.hits == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Tlb(entries=0)


class TestTlbBatch:
    """``access_many`` is access-for-access identical to a sequential
    loop of ``access`` calls — hit bits, counters and the LRU recency
    order (the full behavioural state) all agree."""

    @settings(max_examples=60, deadline=None)
    @given(pages=st.lists(st.integers(min_value=0, max_value=12),
                          min_size=0, max_size=80),
           entries=st.integers(min_value=1, max_value=8))
    def test_access_many_matches_sequential(self, pages, entries):
        page_bytes = 4096
        addrs = [p * page_bytes + (p % 7) * 16 for p in pages]
        batched = Tlb(entries=entries, page_bytes=page_bytes)
        seq = Tlb(entries=entries, page_bytes=page_bytes)
        got = batched.access_many(np.asarray(addrs, dtype=np.int64))
        want = [seq.access(a) for a in addrs]
        assert got.tolist() == want
        assert (batched.hits, batched.misses) == (seq.hits, seq.misses)
        assert batched.state_digest() == seq.state_digest()
        assert batched.resident_pages == seq.resident_pages

    def test_all_resident_batch_updates_recency(self):
        """The all-hit fast path must still move touched pages to the
        MRU end (by last occurrence), or a later eviction would pick
        the wrong victim."""
        t = Tlb(entries=2, page_bytes=4096)
        t.access(0)
        t.access(4096)
        hits = t.access_many(np.asarray([0, 4096, 0]))
        assert hits.all()
        t.access(2 * 4096)           # evicts the LRU page: page 1
        assert t.access(0)
        assert not t.access(4096)

    def test_empty_batch(self):
        t = Tlb()
        assert len(t.access_many(np.asarray([], dtype=np.int64))) == 0
        assert t.hits == 0 and t.misses == 0


class TestDramChannel:
    def test_capacity(self, h800):
        ch = DramChannel.for_device(h800)
        assert ch.capacity_bytes == 80 * 2 ** 30
        assert ch.fits(70 * 2 ** 30)
        assert not ch.fits(90 * 2 ** 30)

    def test_transfer_time(self, a100):
        ch = DramChannel.for_device(a100)
        t = ch.transfer_time_s(ch.sustained_bandwidth_gbps() * 1e9)
        assert t == pytest.approx(1.0)
        with pytest.raises(ValueError):
            ch.transfer_time_s(-1)

    def test_sustained_below_peak(self, any_device):
        ch = DramChannel.for_device(any_device)
        assert ch.sustained_bandwidth_gbps() < ch.peak_bandwidth_gbps


class TestHierarchyRouting:
    def test_ca_load_fills_l1(self, tiny_device):
        mh = MemoryHierarchy(tiny_device)
        first = mh.load(0, cache_op=CacheOp.CACHE_ALL)
        assert first.level is MemLevel.GLOBAL
        second = mh.load(0, cache_op=CacheOp.CACHE_ALL)
        assert second.level is MemLevel.L1
        assert second.latency_clk == \
            tiny_device.mem_latencies.l1_hit_clk

    def test_cg_load_bypasses_l1(self, tiny_device):
        mh = MemoryHierarchy(tiny_device)
        mh.load(0, cache_op=CacheOp.CACHE_GLOBAL)
        second = mh.load(0, cache_op=CacheOp.CACHE_GLOBAL)
        assert second.level is MemLevel.L2
        assert second.latency_clk == \
            tiny_device.mem_latencies.l2_hit_clk
        # and L1 was never filled
        third = mh.load(0, cache_op=CacheOp.CACHE_ALL)
        assert third.level is MemLevel.L2

    def test_global_latency_includes_dram(self, tiny_device):
        mh = MemoryHierarchy(tiny_device)
        mh.warm_tlb(0, 1 << 20)
        res = mh.load(0)
        lat = tiny_device.mem_latencies
        assert res.latency_clk == pytest.approx(
            lat.l2_hit_clk + lat.dram_clk)

    def test_cold_tlb_penalty(self, tiny_device):
        mh = MemoryHierarchy(tiny_device)
        cold = mh.load(0)
        mh.flush()
        mh.warm_tlb(0, 4096)
        warm = mh.load(0)
        assert cold.latency_clk - warm.latency_clk == pytest.approx(
            tiny_device.mem_latencies.tlb_miss_clk)
        assert not cold.tlb_hit and warm.tlb_hit

    def test_per_sm_l1_isolation(self, tiny_device):
        mh = MemoryHierarchy(tiny_device)
        mh.warm_l1(0, 0, 4096)
        # SM 1's L1 is cold → but L2 was warmed, so it hits L2
        res = mh.load(0, sm_id=1)
        assert res.level is MemLevel.L2

    def test_sm_id_validated(self, tiny_device):
        mh = MemoryHierarchy(tiny_device)
        with pytest.raises(ValueError):
            mh.l1_for_sm(tiny_device.num_sms)

    def test_negative_address_rejected(self, tiny_device):
        mh = MemoryHierarchy(tiny_device)
        with pytest.raises(ValueError):
            mh.load(-8)

    def test_flush_resets_everything(self, tiny_device):
        mh = MemoryHierarchy(tiny_device)
        mh.warm_l1(0, 0, 4096)
        mh.flush()
        res = mh.load(0)
        assert res.level is MemLevel.GLOBAL
