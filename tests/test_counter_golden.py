"""The counter-regression gate: committed goldens + typed drift.

Every golden in ``tests/golden/counters/`` is a counters/v2 document
of one fresh default-context experiment run.  These tests hold the
live simulator to those baselines through
:func:`repro.obs.diff.diff_payloads` — the same comparison the
``hopperdissect stats --diff`` CLI gate runs in CI — and pin the
drift-report semantics themselves (new/removed/changed kinds,
histogram-tail tolerance, context mismatch).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.context import RunContext
from repro.obs import ObsSession
from repro.obs.catalog import lookup, uncatalogued
from repro.obs.diff import diff_payloads
from repro.perf import run_experiments

GOLDEN_DIR = Path(__file__).parent / "golden" / "counters"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.json"))


def fresh_payload(name: str) -> dict:
    session = ObsSession()
    ctx = session.bind(RunContext())
    with session.activate():
        run_experiments([name], jobs=1, cache=None, context=ctx)
    return session.counters_v2_payload(context=ctx)


class TestGoldenBaselines:
    def test_goldens_exist(self):
        assert GOLDEN_FILES, "no committed counter goldens"

    @pytest.mark.parametrize(
        "golden_path", GOLDEN_FILES,
        ids=[p.stem for p in GOLDEN_FILES])
    def test_live_run_matches_golden(self, golden_path):
        baseline = json.loads(golden_path.read_text())
        current = fresh_payload(golden_path.stem)
        report = diff_payloads(baseline, current)
        assert report.passed, "\n" + report.render()

    def test_dropped_counter_fails_the_gate(self):
        """The gate's reason to exist: silently losing a counter —
        e.g. an engine refactor dropping its instrumentation — must
        produce failing ``removed`` drift."""
        golden_path = GOLDEN_DIR / "fig08_dsm_rbc.json"
        baseline = json.loads(golden_path.read_text())
        current = fresh_payload("fig08_dsm_rbc")
        del current["experiments"]["fig08_dsm_rbc"]["dsm.hops"]
        report = diff_payloads(baseline, current)
        assert not report.passed
        kinds = {(d.kind, d.counter) for d in report.failures}
        assert ("removed", "dsm.hops") in kinds

    def test_new_counter_fails_the_gate(self):
        baseline = json.loads(
            (GOLDEN_DIR / "fig09_dsm_histogram.json").read_text())
        current = fresh_payload("fig09_dsm_histogram")
        current["experiments"]["fig09_dsm_histogram"]["dsm.novel"] = 3
        report = diff_payloads(baseline, current)
        assert {d.kind for d in report.failures} == {"new"}


class TestCatalogCoverage:
    def test_every_golden_counter_is_catalogued(self):
        """Counters that ship in the committed baselines must have a
        catalog entry — the same net CI's catalog-drift step casts,
        kept here so ``pytest`` alone catches it."""
        names = set()
        for path in GOLDEN_FILES:
            payload = json.loads(path.read_text())
            for bank in payload["experiments"].values():
                names.update(bank)
            names.update(payload["orchestration"])
        assert names, "goldens carry no counters"
        assert uncatalogued(names) == []
        for name in names:
            entry = lookup(name)
            assert entry is not None and entry.description


class TestDriftSemantics:
    BASE = {
        "schema": "hopperdissect.counters/v2",
        "context": "devices=A100;seed=0;fidelity=fast",
        "labels": {"device": "A100", "fidelity": "fast"},
        "experiments": {
            "exp_a": {
                "mem.loads": 100,
                "mem.latency.l2.le00000256": 90,
                "mem.latency.l2.le00000512": 10,
            },
        },
        "orchestration": {"exp.completed": 1},
    }

    def _variant(self, **bank):
        cur = json.loads(json.dumps(self.BASE))
        cur["experiments"]["exp_a"].update(bank)
        for k, v in list(cur["experiments"]["exp_a"].items()):
            if v is None:
                del cur["experiments"]["exp_a"][k]
        return cur

    def test_identical_is_clean(self):
        report = diff_payloads(self.BASE, self._variant())
        assert report.passed and not report.drifts
        assert "clean" in report.render()

    def test_histogram_tail_within_tolerance_passes(self):
        """A tail observation moving one bucket over is absorbed by
        the relative tolerance — the recalibration case."""
        cur = self._variant(**{"mem.latency.l2.le00000256": 89,
                               "mem.latency.l2.le00000512": 11})
        strict = diff_payloads(self.BASE, cur)
        assert not strict.passed and len(strict.failures) == 2
        lenient = diff_payloads(self.BASE, cur, tolerance=0.05)
        assert lenient.passed
        # drift is still *reported*, just marked ok
        assert len(lenient.drifts) == 2
        assert all(d.ok for d in lenient.drifts)

    def test_plain_counters_never_get_slack(self):
        cur = self._variant(**{"mem.loads": 101})
        report = diff_payloads(self.BASE, cur, tolerance=0.5)
        assert not report.passed
        [d] = report.failures
        assert (d.kind, d.counter, d.baseline, d.current) == \
            ("changed", "mem.loads", 100, 101)

    def test_new_bucket_within_tolerance_passes(self):
        cur = self._variant(**{"mem.latency.l2.le00001024": 2})
        assert not diff_payloads(self.BASE, cur).passed
        assert diff_payloads(self.BASE, cur, tolerance=0.05).passed

    def test_context_mismatch_fails(self):
        cur = self._variant()
        cur["context"] = "devices=H800;seed=0;fidelity=fast"
        report = diff_payloads(self.BASE, cur)
        assert not report.passed
        assert report.failures[0].kind == "context"
        assert "context mismatch" in report.render()

    def test_orchestration_bank_is_gated_too(self):
        cur = self._variant()
        cur["orchestration"]["exp.completed"] = 2
        report = diff_payloads(self.BASE, cur)
        [d] = report.failures
        assert d.experiment == "_orchestration"
