"""Tests for the numeric-behaviour probes and the FP8 accuracy study."""

from __future__ import annotations

import pytest

from repro.te import Precision
from repro.te.accuracy import layer_accuracy, linear_accuracy
from repro.tensorcore.numerics_study import run_all_probes


class TestNumericProbes:
    def test_all_probes_pass(self):
        results = run_all_probes()
        failed = [r for r in results if not r.passed]
        assert not failed, "\n".join(
            f"{r.name}: {r.detail}" for r in failed)

    def test_probe_coverage(self):
        names = {r.name for r in run_all_probes()}
        assert {"exact products", "FP32 accumulation",
                "FP16 accumulation", "round-to-nearest-even",
                "subnormal inputs", "TF32 input precision",
                "FP8 overflow", "INT32 accumulator"} <= names

    def test_probe_details_filled(self):
        for r in run_all_probes():
            assert r.behaviour
            assert r.detail


class TestLinearAccuracy:
    def test_precision_ordering(self):
        reports = {r.precision: r for r in linear_accuracy(seed=1)}
        # FP16 (10 mantissa bits) < BF16 (7) < FP8 (3)
        assert reports[Precision.FP16].rel_rms \
            < reports[Precision.BF16].rel_rms \
            < reports[Precision.FP8].rel_rms

    def test_magnitudes(self):
        reports = {r.precision: r for r in linear_accuracy(seed=2)}
        assert reports[Precision.FP16].rel_rms < 1e-3
        assert reports[Precision.FP8].rel_rms < 0.05

    def test_seed_determinism(self):
        a = linear_accuracy(seed=3)
        b = linear_accuracy(seed=3)
        assert [(r.precision, r.rel_rms) for r in a] \
            == [(r.precision, r.rel_rms) for r in b]


class TestLayerAccuracy:
    def test_fp8_layer_error_bounded(self):
        out = layer_accuracy(seed=0)
        assert out[Precision.FP16].rel_rms == pytest.approx(0.0)
        assert 0.0 < out[Precision.FP8].rel_rms < 0.1

    def test_report_str(self):
        out = layer_accuracy(seed=0)
        s = str(out[Precision.FP8])
        assert "TransformerLayer" in s and "FP8" in s
