"""repro.serve — schema, planner, oracle, capability gates.

The service's promise is typed questions in, structured answers out:
canonical serialization makes equal questions byte-equal, the planner
coalesces them into per-(kind, device) shards, and the oracle answers
through the vectorized engines with *structured* unsupported-capability
predictions (never exceptions) wherever a pack gate says no.
"""

from __future__ import annotations

import json

import pytest

from repro.arch import get_device, list_devices
from repro.serve import (
    CostOracle,
    Prediction,
    Query,
    QueryError,
    parse_query,
    parse_query_line,
    plan_queries,
)


class TestQuerySchema:
    def test_canonical_is_spelling_independent(self):
        a = parse_query_line(
            '{"kind":"te.linear","device":"h800","precision":"FP16",'
            '"params":{"m":64,"n":64,"k":64}}')
        b = parse_query_line(
            '{"params":{"k":64,"m":64,"n":64},"device":"H800",'
            '"precision":"fp16","kind":"te.linear"}')
        assert a.canonical() == b.canonical()
        assert a.key() == b.key()

    def test_qid_excluded_from_identity(self):
        a = parse_query({"kind": "dsm.bandwidth", "device": "H800",
                         "params": {"cluster_size": 4}, "id": "x"})
        b = parse_query({"kind": "dsm.bandwidth", "device": "H800",
                         "params": {"cluster_size": 4}, "id": "y"})
        assert a == b
        assert a.canonical() == b.canonical()
        assert '"id"' not in a.canonical()

    def test_defaults_enter_canonical_form(self):
        # an explicit default and an omission must dedup together
        a = parse_query({"kind": "llm.generate", "device": "H800",
                         "precision": "fp8",
                         "params": {"model": "llama-2-7B"}})
        b = parse_query({"kind": "llm.generate", "device": "H800",
                         "precision": "fp8",
                         "params": {"model": "llama-2-7B",
                                    "batch": 8}})
        assert a.canonical() == b.canonical()

    def test_unknown_kind_and_field_rejected(self):
        with pytest.raises(QueryError, match="unknown query kind"):
            Query(kind="te.nonlinear", device="H800")
        with pytest.raises(QueryError, match="unknown param"):
            parse_query({"kind": "mma", "device": "H800",
                         "params": {"ab": "fp16", "cd": "fp32",
                                    "m": 16, "n": 8, "k": 16,
                                    "zz": 1}})
        with pytest.raises(QueryError, match="requires param"):
            parse_query({"kind": "te.linear", "device": "H800",
                         "precision": "fp16",
                         "params": {"m": 64, "n": 64}})

    def test_unknown_device_gets_suggestions(self):
        # QueryError, not KeyError — answer_lines only catches the
        # former, so this is what keeps a bad device in-stream
        with pytest.raises(QueryError, match="did you mean"):
            parse_query({"kind": "mma", "device": "H80",
                         "params": {"ab": "fp16", "cd": "fp32",
                                    "m": 16, "n": 8, "k": 16}})

    def test_bad_json_line(self):
        with pytest.raises(QueryError, match="bad JSON"):
            parse_query_line("{nope")

    def test_prediction_line_is_canonical(self):
        p = Prediction(status="ok", kind="mma", device="A100",
                       metrics=(("latency_clk", 25.5),))
        obj = json.loads(p.to_line())
        assert obj["schema"].startswith("hopperdissect.prediction/")
        assert p.to_line() == Prediction.from_payload(obj).to_line()


class TestPlanner:
    def _q(self, device, m):
        return parse_query({"kind": "te.linear", "device": device,
                            "precision": "fp16",
                            "params": {"m": m, "n": m, "k": m}})

    def test_shards_group_by_kind_and_device(self):
        queries = [self._q("H800", 64), self._q("A100", 64),
                   self._q("H800", 128),
                   parse_query({"kind": "dsm.bandwidth",
                                "device": "H800",
                                "params": {"cluster_size": 2}})]
        plan = plan_queries(queries)
        assert [(s.kind, s.device, len(s.queries))
                for s in plan.shards] == [
            ("dsm.bandwidth", "H800", 1),
            ("te.linear", "A100", 1),
            ("te.linear", "H800", 2),
        ]

    def test_dedup_and_expansion_restore_input_order(self):
        queries = [self._q("H800", 64), self._q("A100", 64),
                   self._q("H800", 64)]
        plan = plan_queries(queries)
        assert plan.n_duplicates == 1
        # positions 0 and 2 share a slot; answers expand in order
        assert plan.expansion[0] == plan.expansion[2]
        assert plan.expansion[1] != plan.expansion[0]
        shard_sizes = sum(len(s.queries) for s in plan.shards)
        assert shard_sizes == 2

    def test_content_key_covers_slot_order(self):
        a = plan_queries([self._q("H800", 64), self._q("H800", 128)])
        b = plan_queries([self._q("H800", 128), self._q("H800", 64)])
        assert a.shards[0].content_key() != b.shards[0].content_key()


class TestOracle:
    def test_answers_match_point_queries(self):
        oracle = CostOracle("H800")
        queries = [
            parse_query({"kind": "te.linear", "device": "H800",
                         "precision": "fp16",
                         "params": {"m": m, "n": m, "k": m}})
            for m in (256, 512, 1024)
        ]
        grouped = oracle.answer_group("te.linear", queries)
        for q, p in zip(queries, grouped):
            assert p.status == "ok"
            assert p == oracle.answer(q)
            assert p.metric("seconds") > 0
            assert p.metric("tflops") > 0

    def test_warm_oracle_answers_are_stable(self):
        oracle = CostOracle("H800")
        q = parse_query({"kind": "llm.generate", "device": "H800",
                         "precision": "fp8",
                         "params": {"model": "llama-2-7B"}})
        assert oracle.answer(q) == oracle.answer(q)

    def test_llm_oom_is_structured(self):
        q = parse_query({"kind": "llm.generate", "device": "RTX4090",
                         "precision": "fp16",
                         "params": {"model": "llama-2-13B",
                                    "batch": 512,
                                    "input_len": 2048,
                                    "output_len": 2048}})
        p = CostOracle("RTX4090").answer(q)
        assert p.status == "oom"
        assert "GiB" in p.reason

    def test_unknown_llm_model_is_in_stream_error(self):
        q = parse_query({"kind": "llm.generate", "device": "H800",
                         "precision": "fp16",
                         "params": {"model": "llama-99B"}})
        p = CostOracle("H800").answer(q)
        assert p.status == "error"
        assert "known models" in p.reason

    def test_memory_latency_grows_past_l2(self):
        oracle = CostOracle("H800")

        def probe(kib):
            return oracle.answer(parse_query(
                {"kind": "memory.latency", "device": "H800",
                 "params": {"footprint_kib": kib}}))
        small = probe(64).metric("mean_latency_clk")
        large = probe(4096).metric("mean_latency_clk")
        assert large > small

    def test_dsm_cluster_size_gate(self):
        oracle = CostOracle("H800")
        ok = oracle.answer(parse_query(
            {"kind": "dsm.bandwidth", "device": "H800",
             "params": {"cluster_size": 4}}))
        assert ok.status == "ok"
        assert ok.metric("aggregate_tbps") > 0
        over = oracle.answer(parse_query(
            {"kind": "dsm.bandwidth", "device": "H800",
             "params": {"cluster_size": 32}}))
        assert over.status == "error"
        assert "exceeds" in over.reason


class TestCapabilityGates:
    """Structured unsupported answers across every registered device.

    The matrix is the packs' own flags, so a new device pack joins
    these assertions automatically.
    """

    @pytest.mark.parametrize("device", list_devices())
    def test_wgmma_gate_matches_pack(self, device):
        q = parse_query({"kind": "wgmma", "device": device,
                         "params": {"ab": "fp16", "cd": "fp32",
                                    "n": 64}})
        p = CostOracle(device).answer(q)
        if get_device(device).pack.has_wgmma:
            assert p.status == "ok"
            assert p.metric("latency_clk") > 0
        else:
            assert p.status == "unsupported"
            assert "has_wgmma" in p.reason

    @pytest.mark.parametrize("device", list_devices())
    def test_fp8_linear_gate_matches_pack(self, device):
        q = parse_query({"kind": "te.linear", "device": device,
                         "precision": "fp8",
                         "params": {"m": 256, "n": 256, "k": 256}})
        p = CostOracle(device).answer(q)
        if get_device(device).pack.has_fp8:
            assert p.status == "ok"
        else:
            assert p.status == "unsupported"
            assert "has_fp8" in p.reason

    @pytest.mark.parametrize("device", list_devices())
    def test_dsm_gate_matches_pack(self, device):
        q = parse_query({"kind": "dsm.bandwidth", "device": device,
                         "params": {"cluster_size": 2}})
        p = CostOracle(device).answer(q)
        if get_device(device).pack.has_distributed_shared_memory:
            assert p.status == "ok"
        else:
            assert p.status == "unsupported"
            assert "has_distributed_shared_memory" in p.reason

    def test_volta_fp32_rides_sweep_entry_gate(self):
        # V100's gen-1 tensor cores are FP16-only: the tf32 mma path
        # answers through SweepEntry.supported, not an exception
        q = parse_query({"kind": "mma", "device": "V100",
                         "params": {"ab": "tf32", "cd": "fp32",
                                    "m": 16, "n": 8, "k": 8}})
        p = CostOracle("V100").answer(q)
        assert p.status == "unsupported"

    def test_unsupported_queries_keep_batch_streaming(self):
        # one unsupported query must not poison its shard's neighbours
        oracle = CostOracle("V100")
        queries = [
            parse_query({"kind": "mma", "device": "V100",
                         "params": {"ab": "fp16", "cd": "fp32",
                                    "m": 16, "n": 8, "k": 16}}),
            parse_query({"kind": "mma", "device": "V100",
                         "params": {"ab": "tf32", "cd": "fp32",
                                    "m": 16, "n": 8, "k": 8}}),
        ]
        first, second = oracle.answer_group("mma", queries)
        assert first.status == "ok"
        assert second.status == "unsupported"
