"""Canonicalization properties of the serve schema.

:meth:`Query.canonical` claims "equal questions render to equal
bytes" — this suite makes the claim a property over all seven query
kinds: canonicalization is idempotent, ``key()`` is insensitive to
param order, device-name case and the client ``id`` tag, and an
explicitly spelled default equals an omission (for defaults that are
real values — the ``None`` defaults of ``experiment`` deliberately
stay out of the canonical form, pinned separately below).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.fuzz.strategies import query_payloads
from repro.serve.schema import (
    KIND_PARAMS,
    KINDS,
    Query,
    parse_query,
    parse_query_line,
)

_SETTINGS = settings(max_examples=200, derandomize=True,
                     deadline=None)


@_SETTINGS
@given(payload=query_payloads())
def test_canonical_is_idempotent(payload):
    q = parse_query(payload)
    again = parse_query_line(q.canonical())
    assert again.canonical() == q.canonical()
    assert again.key() == q.key()


@_SETTINGS
@given(payload=query_payloads())
def test_key_ignores_param_order(payload):
    q = parse_query(payload)
    shuffled = dict(payload)
    shuffled["params"] = dict(
        reversed(list(payload.get("params", {}).items())))
    assert parse_query(shuffled).key() == q.key()


@_SETTINGS
@given(payload=query_payloads())
def test_key_ignores_client_tag_and_device_case(payload):
    q = parse_query(payload)
    relabeled = dict(payload)
    relabeled["id"] = "another-tag"
    if "device" in relabeled:
        relabeled["device"] = relabeled["device"].lower()
    other = parse_query(relabeled)
    assert other.key() == q.key()
    # the tag survives on the query itself, outside identity
    assert other.qid == "another-tag"


@_SETTINGS
@given(payload=query_payloads())
def test_canonical_round_trips_the_wire_form(payload):
    q = parse_query(payload)
    wire = json.loads(q.canonical())
    assert parse_query(wire) == q


_MINIMAL = {
    "te.linear": {"device": "H800", "precision": "fp16",
                  "params": {"m": 64, "n": 64, "k": 64}},
    "llm.generate": {"device": "H800", "precision": "fp8",
                     "params": {"model": "llama-3B"}},
    "mma": {"device": "A100",
            "params": {"ab": "fp16", "cd": "fp32",
                       "m": 16, "n": 8, "k": 16}},
    "wgmma": {"device": "H800",
              "params": {"ab": "fp16", "cd": "fp32", "n": 64}},
    "memory.latency": {"device": "A100",
                       "params": {"footprint_kib": 256}},
    "dsm.bandwidth": {"device": "H800",
                      "params": {"cluster_size": 4}},
    "experiment": {"params": {"name": "table07_mma"}},
}


@pytest.mark.parametrize("kind", KINDS)
def test_explicit_default_equals_omission(kind):
    """Spelling out a (non-``None``) default answers the same
    question as leaving it out."""
    base = dict(_MINIMAL[kind])
    omitted = parse_query({"kind": kind, **base})
    params = dict(base["params"])
    explicit_any = False
    for name, (_required, default, _check) in KIND_PARAMS[kind].items():
        if default is not None and name not in params:
            params[name] = default
            explicit_any = True
    explicit = parse_query({"kind": kind, **base, "params": params})
    assert explicit.key() == omitted.key()
    assert explicit.canonical() == omitted.canonical()
    if not explicit_any:
        # kinds without real defaults still canonicalize stably
        assert omitted == explicit


def test_none_defaults_stay_out_of_canonical_form():
    """``experiment`` fidelity/seed default to "inherit from the
    service context" — an explicit value must *not* collapse onto
    the omission."""
    plain = parse_query({"kind": "experiment",
                         "params": {"name": "table07_mma"}})
    pinned = parse_query({"kind": "experiment",
                          "params": {"name": "table07_mma",
                                     "fidelity": "fast"}})
    assert "fidelity" not in json.loads(plain.canonical()).get(
        "params", {})
    assert pinned.key() != plain.key()


def test_every_kind_has_a_minimal_fixture():
    assert set(_MINIMAL) == set(KINDS)


def test_query_equality_tracks_key():
    a = parse_query({"kind": "mma", "device": "a100",
                     "params": {"ab": "fp16", "cd": "fp32",
                                "m": 16, "n": 8, "k": 16,
                                "sparse": False}})
    b = Query(kind="mma", device="A100",
              params=(("cd", "fp32"), ("ab", "fp16"),
                      ("m", 16), ("n", 8), ("k", 16)))
    assert a == b
    assert a.key() == b.key()
