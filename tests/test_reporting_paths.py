"""Coverage for reporting paths: failing checks, fidelity CLI, render
edge cases."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core import Check, Table
from repro.core.registry import Experiment, ExperimentResult
from repro.core.report import experiments_markdown, summary_line


def _fake_result(passed: bool) -> ExperimentResult:
    t = Table("fake", ["a"])
    t.add_row(1)
    exp = Experiment(
        name="fake_exp", paper_ref="Table 0",
        description="a fake", builder=lambda: (t, []),
    )
    return ExperimentResult(
        experiment=exp, table=t,
        checks=(Check("always", passed, detail="d"),),
    )


class TestReportRendering:
    def test_failing_check_renders_unchecked_box(self):
        md = experiments_markdown({"fake_exp": _fake_result(False)})
        assert "- [ ] always" in md
        assert "*(d)*" in md

    def test_passing_check_renders_checked_box(self):
        md = experiments_markdown({"fake_exp": _fake_result(True)})
        assert "- [x] always" in md

    def test_summary_counts(self):
        results = {"a": _fake_result(True), "b": _fake_result(False)}
        assert summary_line(results).startswith("1/2 findings")

    def test_result_render_marks_failures(self):
        out = _fake_result(False).render()
        assert "[FAIL]" in out
        assert not _fake_result(False).passed


class TestCliFidelity:
    def test_fidelity_command(self, capsys, monkeypatch):
        # stub the expensive computation
        from repro.core import fidelity as fmod

        def fake_compute():
            from repro.core.fidelity import FidelityEntry, \
                TableFidelity
            return [TableFidelity(
                "Stub", (FidelityEntry("x", 10.0, 10.5),))]

        monkeypatch.setattr(fmod, "compute_all", fake_compute)
        assert main(["fidelity"]) == 0
        out = capsys.readouterr().out
        assert "Stub" in out
        assert "MAPE" in out

    def test_run_all_flag(self, capsys, monkeypatch):
        import repro.cli as cli
        import repro.perf

        ran = []

        def fake_run_experiments(names, **_kw):
            from repro.perf.runner import RunReport
            from repro.perf.profile import Profiler
            ran.extend(names)
            return RunReport(
                results={n: _fake_result(True) for n in names},
                profiler=Profiler(),
            )

        monkeypatch.setattr(
            cli, "list_experiments", lambda: ["table06_sass"])
        monkeypatch.setattr(repro.perf, "run_experiments",
                            fake_run_experiments)
        assert main(["run", "--all"]) == 0
        assert ran == ["table06_sass"]

    def test_run_reports_failures_via_exit_code(self, capsys,
                                                monkeypatch):
        import repro.perf
        from repro.perf.profile import Profiler
        from repro.perf.runner import RunReport

        monkeypatch.setattr(
            repro.perf, "run_experiments",
            lambda names, **_kw: RunReport(
                results={n: _fake_result(False) for n in names},
                profiler=Profiler(),
            ),
        )
        assert main(["run", "whatever"]) == 1
        assert "FAILED" in capsys.readouterr().err


class TestTableFormatting:
    def test_float_formats(self):
        t = Table("f", ["v"])
        for v in (0.0, 0.00123, 12.34, 12345.6):
            t.add_row(v)
        out = t.render()
        assert "0.00123" in out
        assert "12.3" in out
        assert "12346" in out

    def test_empty_table_renders(self):
        t = Table("empty", ["a", "bb"])
        out = t.render()
        assert "empty" in out and "bb" in out
