"""Tests: the detection methodology recovers the configured geometry."""

from __future__ import annotations

import pytest

from repro.memory.cache_study import CacheProbe


@pytest.fixture(scope="module")
def probe():
    from repro.arch import get_device
    return CacheProbe(get_device("H800"))


class TestCapacityDetection:
    def test_recovers_l1_size(self, probe):
        detected = probe.detect_l1_capacity()
        assert detected == probe.device.cache.l1_size_bytes

    def test_sweep_steps_up_past_capacity(self, probe):
        l1_kib = probe.device.cache.l1_size_kib
        sweep = probe.capacity_sweep([l1_kib // 2, l1_kib * 2],
                                     iters=512)
        assert sweep[l1_kib // 2] == pytest.approx(
            probe.device.mem_latencies.l1_hit_clk)
        assert sweep[l1_kib * 2] > 2 * sweep[l1_kib // 2]


class TestSectorDetection:
    def test_recovers_fill_granularity(self, probe):
        assert probe.detect_sector_bytes() == \
            probe.device.cache.sector_bytes

    def test_small_strides_amortize(self, probe):
        sweep = probe.stride_sweep([4, 32])
        # 8 accesses share a 32 B sector fill at stride 4
        assert sweep[4] < sweep[32] / 2


class TestAssociativityDetection:
    def test_recovers_ways(self, probe):
        assert probe.detect_l1_ways() == \
            probe.device.cache.l1_associativity

    def test_conflict_cliff(self, probe):
        ways = probe.device.cache.l1_associativity
        sweep = probe.conflict_sweep([ways, ways + 1])
        assert sweep[ways + 1] > 2 * sweep[ways]


class TestFullDetection:
    def test_detect_bundle(self, probe):
        params = probe.detect()
        geo = probe.device.cache
        assert params.l1_capacity_bytes == geo.l1_size_bytes
        assert params.l1_sector_bytes == geo.sector_bytes
        assert params.l1_ways == geo.l1_associativity

    def test_on_second_architecture(self):
        from repro.arch import get_device
        probe = CacheProbe(get_device("RTX4090"))
        assert probe.detect_l1_capacity() == \
            probe.device.cache.l1_size_bytes


class TestParallelSweeps:
    def test_capacity_parallel_equals_serial(self, probe):
        sizes = [32, 64, 128, 256]
        assert probe.capacity_sweep(sizes, iters=128) == \
            probe.capacity_sweep(sizes, iters=128, jobs=2)

    def test_stride_parallel_equals_serial(self, probe):
        strides = [4, 16, 64, 128]
        assert probe.stride_sweep(strides, iters=128) == \
            probe.stride_sweep(strides, iters=128, jobs=2)

    def test_probe_level_jobs_default(self):
        from repro.arch import get_device
        serial = CacheProbe(get_device("RTX4090"))
        fanned = CacheProbe(get_device("RTX4090"), jobs=2)
        assert fanned.jobs == 2
        sizes = [64, 128]
        assert serial.capacity_sweep(sizes, iters=64) == \
            fanned.capacity_sweep(sizes, iters=64)
