"""Tests for banked shared memory."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import SharedMemory


class TestStorage:
    def test_write_read_roundtrip(self):
        sm = SharedMemory(1024)
        payload = np.arange(16, dtype=np.uint32)
        sm.write(64, payload)
        back = sm.read(64, 64).view(np.uint32)
        assert np.array_equal(back, payload)

    def test_u32_helpers(self):
        sm = SharedMemory(64)
        sm.write_u32(8, 0xDEADBEEF)
        assert sm.read_u32(8) == 0xDEADBEEF

    def test_bytes_payload(self):
        sm = SharedMemory(16)
        sm.write(0, b"\x01\x02\x03\x04")
        assert list(sm.read(0, 4)) == [1, 2, 3, 4]

    def test_bounds_checked(self):
        sm = SharedMemory(64)
        with pytest.raises(IndexError):
            sm.read(60, 8)
        with pytest.raises(IndexError):
            sm.write_u32(-4, 1)

    def test_fill(self):
        sm = SharedMemory(32)
        sm.write_u32(0, 7)
        sm.fill(0)
        assert sm.read_u32(0) == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SharedMemory(0)


class TestAtomics:
    def test_atomic_add_returns_old(self):
        sm = SharedMemory(16)
        assert sm.atomic_add_u32(0, 5) == 0
        assert sm.atomic_add_u32(0, 3) == 5
        assert sm.read_u32(0) == 8
        assert sm.atomic_ops == 2

    def test_atomic_wraps_u32(self):
        sm = SharedMemory(16)
        sm.write_u32(0, 0xFFFFFFFF)
        sm.atomic_add_u32(0, 1)
        assert sm.read_u32(0) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=100))
    def test_atomic_sum_correct(self, increments):
        sm = SharedMemory(8)
        for v in increments:
            sm.atomic_add_u32(0, v)
        assert sm.read_u32(0) == sum(increments) % (1 << 32)


class TestBankConflicts:
    def test_conflict_free_unit_stride(self):
        sm = SharedMemory(4096)
        rep = sm.conflict_report([4 * i for i in range(32)])
        assert rep.degree == 1
        assert rep.conflicting_banks == 0

    def test_broadcast(self):
        sm = SharedMemory(4096)
        rep = sm.conflict_report([128] * 32)
        assert rep.broadcast
        assert rep.serialized_passes == 1

    def test_two_way_conflict_stride_8(self):
        sm = SharedMemory(8192)
        # stride 8 bytes = 2 words: lanes land on 16 even banks, 2 each
        rep = sm.conflict_report([8 * i for i in range(32)])
        assert rep.degree == 2
        assert rep.conflicting_banks == 16
        assert rep.serialized_passes == 2

    def test_sixteen_way_conflict_stride_64(self):
        sm = SharedMemory(8192)
        # stride 64 bytes = 16 words: only banks 0 and 16 are hit,
        # 16 distinct words each
        rep = sm.conflict_report([64 * i for i in range(32)])
        assert rep.degree == 16
        assert rep.conflicting_banks == 2

    def test_32_way_worst_case(self):
        sm = SharedMemory(32 * 32 * 4)
        # stride of 32 words: every lane hits bank 0 with distinct words
        rep = sm.conflict_report([128 * i for i in range(32)])
        assert rep.degree == 32

    def test_same_word_not_a_conflict(self):
        sm = SharedMemory(4096)
        # two lanes reading the same word broadcast; a third elsewhere
        rep = sm.conflict_report([0, 0, 4])
        assert rep.degree == 1

    def test_access_cycles_adds_replays(self):
        sm = SharedMemory(8192)
        base = 29.0
        free = sm.access_cycles([4 * i for i in range(32)], base)
        conflicted = sm.access_cycles([128 * i for i in range(32)], base)
        assert free == base
        assert conflicted == base + 31

    def test_too_many_lanes(self):
        sm = SharedMemory(256)
        with pytest.raises(ValueError):
            sm.conflict_report([0] * 33)

    def test_empty_access(self):
        sm = SharedMemory(256)
        assert sm.conflict_report([]).serialized_passes == 1
