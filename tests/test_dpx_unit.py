"""Tests for the DPX timing model (Figs 6, 7)."""

from __future__ import annotations

import pytest

from repro.arch import get_device
from repro.dpx import DpxTimingModel, block_sweep, get_dpx_function


@pytest.fixture(scope="module")
def models():
    return {d: DpxTimingModel(get_device(d))
            for d in ("A100", "RTX4090", "H800")}


class TestLatency:
    def test_hardware_flag(self, models):
        assert models["H800"].hardware
        assert not models["A100"].hardware
        assert not models["RTX4090"].hardware

    def test_emulated_devices_identical_cycles(self, models):
        for name in ("__vimax3_s32", "__viaddmax_s16x2_relu"):
            fn = get_dpx_function(name)
            assert models["A100"].latency_clk(fn) \
                == models["RTX4090"].latency_clk(fn)

    def test_h800_never_slower(self, models):
        from repro.dpx import DPX_FUNCTIONS
        for fn in DPX_FUNCTIONS.values():
            assert models["H800"].latency_clk(fn) \
                <= models["A100"].latency_clk(fn)

    def test_simple_op_parity(self, models):
        fn = get_dpx_function("__vimax_s32")
        assert models["H800"].latency_clk(fn) \
            == models["A100"].latency_clk(fn)

    def test_latency_ns_uses_clock(self, models):
        fn = get_dpx_function("__vimax3_s32")
        # RTX4090's higher clock → fewer ns for the same cycle count
        assert models["RTX4090"].latency_ns(fn) \
            < models["A100"].latency_ns(fn)


class TestThroughput:
    def test_sixteen_bit_relu_speedup(self, models):
        fn = get_dpx_function("__viaddmax_s16x2_relu")
        s = models["H800"].speedup_vs(fn, models["A100"])
        assert 10 < s < 18  # paper: "up to 13 times"

    def test_simple_ops_close(self, models):
        fn = get_dpx_function("__viaddmax_s32")
        s = models["H800"].speedup_vs(fn, models["RTX4090"])
        assert s < 2.0

    def test_measure_flags_unmeasurable(self, models):
        fn = get_dpx_function("__vibmax_s32")
        assert not models["A100"].measure(fn).measurable
        assert models["H800"].measure(fn).measurable

    def test_throughput_gops_scaling(self, models):
        fn = get_dpx_function("__vimax3_s32")
        full = models["H800"].throughput_gops(fn)
        half = models["H800"].throughput_gops(
            fn, num_blocks=get_device("H800").num_sms // 2)
        assert half == pytest.approx(full / 2, rel=0.01)


class TestSawtooth:
    def test_plummet_past_sm_multiple(self, h800):
        fn = get_dpx_function("__vimax3_s32")
        pts = {p["blocks"]: p["gops"]
               for p in block_sweep(h800, fn, max_multiple=2)}
        sms = h800.num_sms
        assert pts[sms + 1] < 0.55 * pts[sms]
        assert pts[2 * sms] == pytest.approx(pts[sms], rel=1e-9)
        # recovery between multiples
        assert pts[2 * sms - 1] > pts[sms + 1]

    def test_linear_below_sm_count(self, h800):
        fn = get_dpx_function("__vimax3_s32")
        pts = {p["blocks"]: p["gops"]
               for p in block_sweep(h800, fn, max_multiple=1)}
        assert pts[h800.num_sms // 2] == pytest.approx(
            pts[1] * (h800.num_sms // 2), rel=0.01)
