"""Tests for the mma register-fragment layouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa import MatrixShape, MmaInstruction
from repro.isa.dtypes import DType
from repro.isa.fragments import (
    FragmentLayout,
    a_layout,
    b_layout,
    c_layout,
    layouts_for,
)


def _shapes():
    return [
        (DType.FP16, MatrixShape(16, 8, 8)),
        (DType.FP16, MatrixShape(16, 8, 16)),
        (DType.BF16, MatrixShape(16, 8, 16)),
        (DType.TF32, MatrixShape(16, 8, 4)),
        (DType.TF32, MatrixShape(16, 8, 8)),
        (DType.INT8, MatrixShape(16, 8, 16)),
        (DType.INT8, MatrixShape(16, 8, 32)),
    ]


class TestBijection:
    @pytest.mark.parametrize("ab,shape", _shapes(),
                             ids=lambda v: str(v))
    def test_a_fragment_bijective(self, ab, shape):
        lay = a_layout(shape, ab)
        assert lay.is_bijection()
        assert lay.lane.min() == 0 and lay.lane.max() == 31

    @pytest.mark.parametrize("ab,shape", _shapes(),
                             ids=lambda v: str(v))
    def test_b_fragment_bijective(self, ab, shape):
        lay = b_layout(shape, ab)
        assert lay.is_bijection()

    def test_c_fragment_bijective(self):
        lay = c_layout(MatrixShape(16, 8, 1), DType.FP32)
        assert lay.is_bijection()

    @pytest.mark.parametrize("ab,shape", _shapes(),
                             ids=lambda v: str(v))
    def test_even_distribution(self, ab, shape):
        """Every lane holds the same number of A elements."""
        lay = a_layout(shape, ab)
        counts = np.bincount(lay.lane.ravel(), minlength=32)
        assert np.all(counts == lay.elements_per_thread)


class TestDocumentedAnchors:
    """Spot values straight from the PTX ISA figures."""

    def test_fp16_m16n8k16_a(self):
        lay = a_layout(MatrixShape(16, 8, 16), DType.FP16)
        assert lay.owner(0, 0) == (0, 0)       # T0.a0
        assert lay.owner(0, 1) == (0, 1)       # T0.a1
        assert lay.owner(8, 0) == (0, 2)       # T0.a2 (lower half)
        assert lay.owner(0, 8) == (0, 4)       # T0.a4 (second k chunk)
        assert lay.owner(8, 9) == (0, 7)       # T0.a7
        assert lay.owner(0, 2) == (1, 0)       # T1.a0
        assert lay.owner(1, 0) == (4, 0)       # next row group → T4
        assert lay.elements_per_thread == 8

    def test_fp16_m16n8k16_b(self):
        lay = b_layout(MatrixShape(16, 8, 16), DType.FP16)
        assert lay.owner(0, 0) == (0, 0)       # T0.b0
        assert lay.owner(1, 0) == (0, 1)       # T0.b1
        assert lay.owner(8, 0) == (0, 2)       # T0.b2
        assert lay.owner(0, 1) == (4, 0)       # next column group
        assert lay.elements_per_thread == 4

    def test_tf32_m16n8k8_a(self):
        lay = a_layout(MatrixShape(16, 8, 8), DType.TF32)
        assert lay.owner(0, 0) == (0, 0)
        assert lay.owner(8, 0) == (0, 1)
        assert lay.owner(0, 4) == (0, 2)
        assert lay.owner(8, 4) == (0, 3)
        assert lay.owner(0, 1) == (1, 0)

    def test_int8_m16n8k16_a(self):
        lay = a_layout(MatrixShape(16, 8, 16), DType.INT8)
        # one thread holds 4 consecutive bytes per row half
        assert [lay.owner(0, c) for c in range(4)] == \
            [(0, 0), (0, 1), (0, 2), (0, 3)]
        assert lay.owner(0, 4) == (1, 0)
        assert lay.owner(8, 0) == (0, 4)

    def test_accumulator_m16n8(self):
        lay = c_layout(MatrixShape(16, 8, 1), DType.FP32)
        assert lay.owner(0, 0) == (0, 0)
        assert lay.owner(0, 1) == (0, 1)
        assert lay.owner(8, 0) == (0, 2)
        assert lay.owner(0, 2) == (1, 0)
        assert lay.owner(15, 7) == (31, 3)
        assert lay.elements_per_thread == 4


class TestRegisterCounts:
    def test_fp16_a_registers(self):
        lay = a_layout(MatrixShape(16, 8, 16), DType.FP16)
        assert lay.registers_per_thread(16) == 4   # 8 halves → 4 regs

    def test_tf32_a_registers(self):
        lay = a_layout(MatrixShape(16, 8, 8), DType.TF32)
        assert lay.registers_per_thread(32) == 4

    def test_int8_b_registers(self):
        lay = b_layout(MatrixShape(16, 8, 32), DType.INT8)
        assert lay.registers_per_thread(8) == 2    # 8 bytes → 2 regs

    def test_invalid_width(self):
        lay = c_layout(MatrixShape(16, 8, 1), DType.FP32)
        with pytest.raises(ValueError):
            lay.registers_per_thread(24)


class TestApi:
    def test_layouts_for(self):
        instr = MmaInstruction(DType.FP16, DType.FP32,
                               MatrixShape(16, 8, 16))
        a, b, c = layouts_for(instr)
        assert (a.operand, b.operand, c.operand) == ("A", "B", "C")
        assert a.rows == 16 and b.rows == 16 and c.cols == 8

    def test_sparse_rejected(self):
        instr = MmaInstruction(DType.FP16, DType.FP32,
                               MatrixShape(16, 8, 16), sparse=True)
        with pytest.raises(ValueError, match="sparse"):
            layouts_for(instr)

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            a_layout(MatrixShape(8, 8, 4), DType.FP64)
        with pytest.raises(ValueError):
            b_layout(MatrixShape(16, 16, 16), DType.FP16)

    def test_gather_reconstructs_matrix(self):
        """Scattering a matrix into fragments and gathering it back by
        (lane, index) reproduces the matrix — the property an ldmatrix
        shuffle implementation relies on."""
        lay = a_layout(MatrixShape(16, 8, 16), DType.FP16)
        rng = np.random.default_rng(0)
        mat = rng.normal(size=(16, 16))
        frags = np.zeros((32, lay.fragment_size))
        frags[lay.lane, lay.index] = mat
        gathered = frags[lay.lane, lay.index]
        assert np.array_equal(gathered, mat)
