"""Tests for the RBC benchmark (Fig 8) and DSM histogram (Fig 9)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsm import (
    DsmHistogram,
    HistogramConfig,
    RingCopyBenchmark,
)


class TestRingCopy:
    def test_functional_ring(self, h800):
        rbc = RingCopyBenchmark(h800)
        for cs in (2, 3, 8):
            assert rbc.run_functional(cluster_size=cs, threads=16)

    def test_peak_matches_paper(self, h800):
        peak = RingCopyBenchmark(h800).peak_tbps()
        assert peak == pytest.approx(3.27, rel=0.05)

    def test_cluster_scaling_shape(self, h800):
        rbc = RingCopyBenchmark(h800)
        best = {cs: rbc.measure(cluster_size=cs, block_threads=1024,
                                ilp=8).aggregate_tbps
                for cs in (2, 4, 8, 16)}
        assert best[2] > best[4] > best[8] > best[16]
        assert best[4] == pytest.approx(2.65, rel=0.08)

    def test_ilp_helps_until_saturation(self, h800):
        rbc = RingCopyBenchmark(h800)
        vals = [rbc.measure(cluster_size=2, block_threads=128,
                            ilp=ilp).aggregate_tbps
                for ilp in (1, 2, 4, 8)]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))
        assert vals[-1] > 2 * vals[0]

    def test_latency_bound_flag(self, h800):
        rbc = RingCopyBenchmark(h800)
        assert rbc.measure(cluster_size=2, block_threads=64,
                           ilp=1).latency_bound
        assert not rbc.measure(cluster_size=2, block_threads=1024,
                               ilp=8).latency_bound

    def test_block_size_validation(self, h800):
        with pytest.raises(ValueError):
            RingCopyBenchmark(h800).measure(cluster_size=2,
                                            block_threads=16, ilp=1)

    def test_sweep_covers_grid(self, h800):
        res = RingCopyBenchmark(h800).sweep(
            cluster_sizes=(2, 4), block_threads=(128, 1024),
            ilps=(1, 4))
        assert len(res) == 8


class TestHistogramFunctional:
    @pytest.mark.parametrize("cs", [1, 2, 4])
    def test_counts_match_bincount(self, h800, cs):
        hist = DsmHistogram(h800)
        rng = np.random.default_rng(cs)
        data = rng.integers(0, 256, 1500)
        counts = hist.compute(data, HistogramConfig(256, cs))
        assert np.array_equal(counts,
                              np.bincount(data, minlength=256))

    def test_remote_traffic_fraction(self, h800):
        hist = DsmHistogram(h800)
        data = np.arange(512) % 512
        cfg = HistogramConfig(512, 4)
        hist.compute(data, cfg)
        # with uniform data ~3/4 of increments cross blocks
        assert cfg.remote_fraction == 0.75

    def test_rejects_out_of_range(self, h800):
        hist = DsmHistogram(h800)
        with pytest.raises(ValueError):
            hist.compute(np.array([300]), HistogramConfig(256, 2))

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300),
           st.sampled_from([1, 2, 4, 8]))
    def test_property_counts(self, values, cs):
        from repro.arch import get_device
        hist = DsmHistogram(get_device("H800"))
        data = np.array(values)
        counts = hist.compute(data, HistogramConfig(64, cs))
        assert counts.sum() == len(values)
        assert np.array_equal(counts, np.bincount(data, minlength=64))


class TestHistogramTiming:
    def test_cs1_drop_at_large_nbins(self, h800):
        hist = DsmHistogram(h800)
        t1024 = hist.measure(HistogramConfig(1024, 1, 512))
        t2048 = hist.measure(HistogramConfig(2048, 1, 512))
        assert t2048.elements_per_second \
            < 0.6 * t1024.elements_per_second
        assert t2048.limiter == "latency"

    def test_clustering_restores_throughput(self, h800):
        hist = DsmHistogram(h800)
        cs1 = hist.measure(HistogramConfig(2048, 1, 512))
        cs2 = hist.measure(HistogramConfig(2048, 2, 512))
        assert cs2.elements_per_second > 1.5 * cs1.elements_per_second

    def test_resident_blocks_shrink_with_bins(self, h800):
        hist = DsmHistogram(h800)
        many = hist.resident_blocks(HistogramConfig(256, 1, 128))
        few = hist.resident_blocks(HistogramConfig(4096, 1, 128))
        assert few < many

    def test_network_limits_large_clusters(self, h800):
        hist = DsmHistogram(h800)
        r = hist.measure(HistogramConfig(256, 16, 512))
        assert r.limiter == "SM-to-SM network"

    def test_smem_per_block_partitioned(self):
        cfg1 = HistogramConfig(2048, 1, 128)
        cfg4 = HistogramConfig(2048, 4, 128)
        assert cfg4.smem_bytes_per_block \
            == cfg1.smem_bytes_per_block // 4

    def test_validation(self):
        with pytest.raises(ValueError):
            HistogramConfig(1, 1)
        with pytest.raises(ValueError):
            HistogramConfig(64, 0)
        with pytest.raises(ValueError):
            HistogramConfig(64, 1, block_threads=16)
