"""Tests for wgmma smem descriptors and the delayed-scaling recipe."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.descriptor import (
    SmemDescriptor,
    Swizzle,
    decode_descriptor,
    descriptor_for_tile,
    encode_descriptor,
)
from repro.numerics import E4M3
from repro.te.recipe import DelayedScaling

aligned = st.integers(0, (1 << 14) - 1).map(lambda v: v * 16)


class TestDescriptorEncoding:
    def test_known_encoding(self):
        d = SmemDescriptor(start_address=0x400,
                           leading_byte_offset=256,
                           stride_byte_offset=2048,
                           base_offset=3, swizzle=Swizzle.B128)
        w = encode_descriptor(d)
        assert w & 0x3FFF == 0x400 // 16
        assert (w >> 16) & 0x3FFF == 256 // 16
        assert (w >> 32) & 0x3FFF == 2048 // 16
        assert (w >> 49) & 0x7 == 3
        assert (w >> 62) == 1

    def test_decode_inverse(self):
        d = SmemDescriptor(1024, 128, 1024, 2, Swizzle.B64)
        assert decode_descriptor(encode_descriptor(d)) == d

    @settings(max_examples=200, deadline=None)
    @given(aligned, aligned, aligned, st.integers(0, 7),
           st.sampled_from(list(Swizzle)))
    def test_roundtrip_property(self, start, lbo, sbo, base, sw):
        d = SmemDescriptor(start, lbo, sbo, base, sw)
        assert decode_descriptor(encode_descriptor(d)) == d

    def test_alignment_enforced(self):
        with pytest.raises(ValueError, match="aligned"):
            SmemDescriptor(8, 16, 16)
        with pytest.raises(ValueError, match="aligned"):
            SmemDescriptor(16, 24, 16)

    def test_field_width_enforced(self):
        with pytest.raises(ValueError, match="field"):
            SmemDescriptor((1 << 14) * 16, 16, 16)
        with pytest.raises(ValueError, match="3-bit"):
            SmemDescriptor(16, 16, 16, base_offset=8)

    def test_decode_range(self):
        with pytest.raises(ValueError):
            decode_descriptor(1 << 64)
        with pytest.raises(ValueError):
            decode_descriptor(-1)

    def test_swizzle_atom_sizes(self):
        assert Swizzle.NONE.bytes == 0
        assert Swizzle.B128.bytes == 128
        assert Swizzle.B32.bytes == 32


class TestTileBuilder:
    def test_fp16_k_major_tile(self):
        # a 64×16 FP16 A tile: line = 32 B, core block = 256 B
        d = descriptor_for_tile(base=0, rows=64, cols=16, elem_bytes=2)
        assert d.leading_byte_offset == 32
        assert d.stride_byte_offset == 256

    def test_misaligned_line_rejected(self):
        with pytest.raises(ValueError, match="pad"):
            descriptor_for_tile(base=0, rows=64, cols=3, elem_bytes=2)

    def test_column_major(self):
        d = descriptor_for_tile(base=0, rows=16, cols=256,
                                elem_bytes=2, row_major=False)
        assert d.leading_byte_offset == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            descriptor_for_tile(base=0, rows=0, cols=8, elem_bytes=2)


class TestDelayedScaling:
    def test_first_quantize_uses_unit_scale(self):
        r = DelayedScaling()
        qt = r.quantize(np.array([100.0]))
        assert qt.scale == 1.0          # no history yet

    def test_scale_follows_history(self):
        r = DelayedScaling()
        r.observe(np.array([448.0]))
        assert r.current_scale() == pytest.approx(1.0)
        r.observe(np.array([896.0]))
        assert r.current_scale() == pytest.approx(2.0)

    def test_window_forgets(self):
        r = DelayedScaling(amax_history_len=2)
        r.observe(np.array([896.0]))
        r.observe(np.array([1.0]))
        r.observe(np.array([1.0]))      # 896 falls out of the window
        assert r.current_scale() < 0.01

    def test_most_recent_mode(self):
        r = DelayedScaling(amax_compute="most_recent")
        r.observe(np.array([896.0]))
        r.observe(np.array([448.0]))
        assert r.current_scale() == pytest.approx(1.0)

    def test_staleness_saturates(self):
        """Activations doubling step over step: the delayed scale
        lags one step behind, so the biggest values clip."""
        r = DelayedScaling(amax_history_len=1)
        r.observe(np.array([1.0]))
        grown = np.array([2.0, 1.0, 0.5])
        assert r.saturation_fraction(grown) > 0
        qt = r.quantize(grown)
        back = qt.dequantize()
        assert back[0] < 2.0            # clipped at scale·448…
        # next step the history caught up
        assert r.current_scale() == pytest.approx(
            2.0 / E4M3.max_finite)

    def test_margin_buys_headroom(self):
        tight = DelayedScaling(amax_history_len=1, margin=0.0)
        roomy = DelayedScaling(amax_history_len=1, margin=1.0)
        for r in (tight, roomy):
            r.observe(np.array([448.0]))
        grown = np.array([700.0])
        assert tight.saturation_fraction(grown) == 1.0
        assert roomy.saturation_fraction(grown) == 0.0

    def test_quantize_then_observe_order(self):
        """TE order: the current tensor's amax affects the NEXT step,
        not its own quantisation."""
        r = DelayedScaling(amax_history_len=4)
        r.quantize(np.array([10.0]))
        assert r.history == [10.0]
        qt = r.quantize(np.array([20.0]))
        # scale derived from the 10.0 observation only
        assert qt.scale == pytest.approx(10.0 / E4M3.max_finite)

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayedScaling(amax_history_len=0)
        with pytest.raises(ValueError):
            DelayedScaling(margin=-1)

    def test_zero_and_empty_inputs(self):
        r = DelayedScaling()
        r.observe(np.zeros(4))
        assert r.current_scale() == 1.0
        assert r.saturation_fraction(np.array([])) == 0.0
