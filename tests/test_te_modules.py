"""Tests for the Transformer-Engine module zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import get_device
from repro.te import (
    CostModel,
    DotProductAttention,
    LayerNorm,
    LayerNormMLP,
    Linear,
    Precision,
    RMSNorm,
    TransformerLayer,
    TransformerLayerConfig,
    fp8_autocast,
    fp8_is_enabled,
)
from repro.te.modules import gelu, swiglu


def _x(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestAutocast:
    def test_context_toggles(self):
        assert not fp8_is_enabled()
        with fp8_autocast():
            assert fp8_is_enabled()
            with fp8_autocast(False):
                assert not fp8_is_enabled()
            assert fp8_is_enabled()
        assert not fp8_is_enabled()

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with fp8_autocast():
                raise RuntimeError("boom")
        assert not fp8_is_enabled()


class TestLinear:
    def test_fp16_forward_close_to_exact(self):
        lin = Linear(32, 16)
        x = _x((8, 32))
        y = lin(x, precision=Precision.FP16)
        ref = x @ lin.weight.T + lin.bias
        assert np.allclose(y, ref, rtol=1e-2, atol=1e-2)

    def test_fp8_recipe(self):
        lin = Linear(64, 64, bias=False)
        x = _x((4, 64))
        with fp8_autocast():
            y8 = lin(x)
        ref = x @ lin.weight.T
        rel = np.abs(y8 - ref) / (np.abs(ref) + 1e-6)
        assert np.median(rel) < 0.1      # FP8 is coarse but sane
        y16 = lin(x, precision=Precision.FP16)
        assert np.median(np.abs(y16 - ref)) \
            < np.median(np.abs(y8 - ref))

    def test_fp32_exact(self):
        lin = Linear(8, 8, bias=False)
        x = _x((2, 8))
        y = lin(x, precision=Precision.FP32)
        assert np.allclose(y, x @ lin.weight.T, rtol=1e-12)

    def test_shape_validation(self):
        lin = Linear(8, 4)
        with pytest.raises(ValueError, match="last dim"):
            lin(_x((2, 9)))
        with pytest.raises(ValueError):
            Linear(0, 4)

    def test_lazy_weight_not_materialized_by_costs(self, h800):
        lin = Linear(8192, 8192)
        cm = CostModel(h800)
        lin.op_costs(cm, tokens=128, precision=Precision.FP16)
        assert lin._weight is None     # pricing didn't allocate

    def test_weight_setter_validates(self):
        lin = Linear(4, 2)
        with pytest.raises(ValueError):
            lin.weight = np.ones((3, 3))
        lin.weight = np.ones((2, 4))
        assert np.all(lin(np.ones((1, 4)),
                          precision=Precision.FP32)
                      == 4.0 + lin.bias)


class TestNorms:
    def test_layernorm_statistics(self):
        ln = LayerNorm(64)
        y = ln(_x((10, 64)) * 5 + 3)
        assert np.allclose(y.mean(-1), 0, atol=1e-9)
        assert np.allclose(y.std(-1), 1, atol=1e-3)

    def test_rmsnorm_unit_rms(self):
        rn = RMSNorm(64)
        y = rn(_x((10, 64)) * 7)
        assert np.allclose(np.sqrt(np.mean(y * y, -1)), 1, atol=1e-3)

    def test_rmsnorm_no_mean_subtraction(self):
        rn = RMSNorm(4)
        x = np.array([[1.0, 1.0, 1.0, 1.0]])
        assert np.allclose(rn(x), 1.0, atol=1e-4)

    def test_norm_costs_are_bandwidth_ops(self, h800):
        cm = CostModel(h800)
        ops = RMSNorm(4096).op_costs(cm, 2048, Precision.FP16)
        assert len(ops) == 1
        assert ops[0].flops == 0
        assert ops[0].bytes == 2048 * 4096 * 2 * 2


class TestActivations:
    def test_swiglu(self):
        g = np.array([0.0, 100.0])
        u = np.array([3.0, 2.0])
        out = swiglu(g, u)
        assert out[0] == 0.0
        assert out[1] == pytest.approx(200.0, rel=1e-6)

    def test_gelu_endpoints(self):
        assert gelu(np.array([0.0]))[0] == 0.0
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0,
                                                          rel=1e-4)
        assert abs(gelu(np.array([-10.0]))[0]) < 1e-3


class TestLayerNormMLP:
    def test_forward_shapes(self):
        mlp = LayerNormMLP(32, 64)
        y = mlp(_x((2, 5, 32)))
        assert y.shape == (2, 5, 32)

    def test_gelu_variant(self):
        mlp = LayerNormMLP(16, 32, activation="gelu",
                           normalization="layernorm")
        assert mlp(_x((3, 16))).shape == (3, 16)
        with pytest.raises(ValueError):
            LayerNormMLP(16, 32, activation="relu")

    def test_fusion_drops_input_quantize(self, h800):
        cm = CostModel(h800)
        mlp = LayerNormMLP(1024, 2816)
        ops = mlp.op_costs(cm, 2048, Precision.FP8)
        names = [o.name for o in ops]
        # fc1's quantize_input removed by fusion, fc2's kept
        assert names.count("quantize_input") == 1

    def test_swiglu_fc1_width(self):
        mlp = LayerNormMLP(16, 32, activation="swiglu")
        assert mlp.fc1.out_features == 64


class TestAttention:
    def test_softmax_rows_sum_to_one_effect(self):
        att = DotProductAttention(2, 8)
        q = k = v = _x((1, 4, 2, 8))
        out = att(q, k, v)
        assert out.shape == (1, 4, 2, 8)
        # attention output is a convex combination of v rows
        assert out.max() <= v.max() + 1e-9
        assert out.min() >= v.min() - 1e-9

    def test_causal_mask(self):
        att = DotProductAttention(1, 4)
        s = 4
        q = k = _x((1, s, 1, 4), 1)
        v = np.zeros((1, s, 1, 4))
        v[0, -1] = 100.0  # only the last position carries signal
        causal = np.tril(np.ones((s, s), dtype=bool))
        out = att(q, k, v, mask=causal[None, None])
        # earlier queries cannot see position s-1
        assert np.allclose(out[0, 0], 0.0)
        assert np.abs(out[0, -1]).max() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DotProductAttention(0, 8)


class TestTransformerLayer:
    def test_paper_configs(self):
        cfgs = TransformerLayerConfig.PAPER_CONFIGS
        assert cfgs[4096].ffn_hidden_size == 11008
        assert cfgs[8192].num_attention_heads == 64
        assert cfgs[5120].head_dim == 128

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            TransformerLayerConfig(100, 200, 3)

    def test_forward_small(self):
        layer = TransformerLayer(TransformerLayerConfig(64, 128, 4))
        x = _x((2, 8, 64))
        y = layer(x)
        assert y.shape == x.shape
        assert np.all(np.isfinite(y))

    def test_latency_scaling(self, h800):
        cm = CostModel(h800)
        lat = {}
        for h in (1024, 4096, 8192):
            layer = TransformerLayer(
                TransformerLayerConfig.PAPER_CONFIGS[h])
            lat[h] = layer.latency_ms(cm, precision=Precision.FP16)
        assert lat[1024] < lat[4096] < lat[8192]
        # roughly quadratic in hidden size at large sizes
        assert lat[8192] / lat[4096] > 2.5

    def test_fp8_crossover(self, h800):
        cm = CostModel(h800)
        small = TransformerLayer(
            TransformerLayerConfig.PAPER_CONFIGS[1024])
        large = TransformerLayer(
            TransformerLayerConfig.PAPER_CONFIGS[8192])
        assert small.latency_ms(cm, precision=Precision.FP8) \
            > small.latency_ms(cm, precision=Precision.FP16)
        assert large.latency_ms(cm, precision=Precision.FP8) \
            < large.latency_ms(cm, precision=Precision.FP16)
