"""Cross-cutting model invariants (property-based).

These don't pin paper numbers — they assert physics the models must
never violate regardless of configuration: nothing exceeds its peak,
throttles only reduce, resources monotonically constrain, scaling laws
hold.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import get_device, list_devices
from repro.isa.lowering import UnsupportedInstruction
from repro.isa import (
    MatrixShape,
    MmaInstruction,
    OperandSource,
    WgmmaInstruction,
)
from repro.isa.dtypes import DType
from repro.isa.mma import mma_shapes, valid_wgmma_n
from repro.power import PowerModel
from repro.sm.occupancy import BlockConfig, occupancy
from repro.tensorcore import TensorCoreTimingModel

_WGMMA_TYPES = [
    (DType.FP16, DType.FP16), (DType.FP16, DType.FP32),
    (DType.BF16, DType.FP32), (DType.TF32, DType.FP32),
    (DType.E4M3, DType.FP16), (DType.E4M3, DType.FP32),
    (DType.E5M2, DType.FP32), (DType.INT8, DType.INT32),
]


class TestWgmmaInvariants:
    @settings(max_examples=120, deadline=None)
    @given(st.sampled_from(valid_wgmma_n()),
           st.sampled_from(_WGMMA_TYPES),
           st.booleans(),
           st.sampled_from(list(OperandSource)))
    def test_never_exceeds_peak(self, n, types, sparse, src):
        ab, cd = types
        h800 = get_device("H800")
        t = TensorCoreTimingModel(h800).wgmma(
            WgmmaInstruction(ab, cd, n, sparse=sparse, a_source=src))
        peak = h800.tc_peak_tflops(ab.peak_key, sparse=sparse)
        assert t.throughput_tflops("zero") <= peak * 1.0001
        assert t.throughput_tflops("rand") \
            <= t.throughput_tflops("zero") * 1.0001

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(_WGMMA_TYPES), st.booleans())
    def test_rs_throughput_monotone_in_n(self, types, sparse):
        ab, cd = types
        tm = TensorCoreTimingModel(get_device("H800"))
        vals = [
            tm.wgmma(WgmmaInstruction(
                ab, cd, n, sparse=sparse,
                a_source=OperandSource.REGISTER)).throughput_tflops()
            for n in (8, 32, 64, 128, 256)
        ]
        assert all(a <= b * 1.0001 for a, b in zip(vals, vals[1:]))

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(valid_wgmma_n()),
           st.sampled_from(_WGMMA_TYPES))
    def test_ss_never_beats_rs(self, n, types):
        ab, cd = types
        tm = TensorCoreTimingModel(get_device("H800"))
        for sparse in (False, True):
            ss = tm.wgmma(WgmmaInstruction(
                ab, cd, n, sparse=sparse,
                a_source=OperandSource.SHARED))
            rs = tm.wgmma(WgmmaInstruction(
                ab, cd, n, sparse=sparse,
                a_source=OperandSource.REGISTER))
            assert ss.throughput_tflops() \
                <= rs.throughput_tflops() * 1.0001
            assert ss.latency_clk >= rs.latency_clk

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(valid_wgmma_n()),
           st.sampled_from(_WGMMA_TYPES), st.booleans(),
           st.sampled_from(list(OperandSource)))
    def test_interval_at_least_latency(self, n, types, sparse, src):
        ab, cd = types
        t = TensorCoreTimingModel(get_device("H800")).wgmma(
            WgmmaInstruction(ab, cd, n, sparse=sparse, a_source=src))
        assert t.issue_interval_clk >= t.latency_clk


class TestMmaInvariants:
    def _all_instrs(self):
        out = []
        for ab in (DType.FP16, DType.TF32, DType.INT8):
            for cd in (DType.FP16, DType.FP32, DType.INT32):
                try:
                    shapes = mma_shapes(ab)
                except ValueError:
                    continue
                for shape in shapes:
                    for sparse in (False, True):
                        try:
                            out.append(MmaInstruction(ab, cd, shape,
                                                      sparse=sparse))
                        except ValueError:
                            pass
        return out

    @pytest.mark.parametrize("dev", list_devices())
    def test_never_exceeds_clocked_peak(self, dev):
        device = get_device(dev)
        tm = TensorCoreTimingModel(device)
        priced = 0
        for instr in self._all_instrs():
            try:
                thpt = tm.mma(instr).throughput_tflops()
                peak = device.tc_peak_tflops(instr.ab_type.peak_key,
                                             sparse=instr.sparse)
            except (UnsupportedInstruction, KeyError):
                # older packs genuinely lack the instruction or unit
                continue
            priced += 1
            assert thpt <= peak * 1.0001, instr.opcode
        # every registered pack prices at least the FP16 mma family
        assert priced > 0

    @pytest.mark.parametrize("dev", list_devices())
    def test_sparse_never_slower_than_dense(self, dev):
        tm = TensorCoreTimingModel(get_device(dev))
        for instr in self._all_instrs():
            if instr.sparse:
                continue
            try:
                dense = tm.mma(instr).throughput_tflops()
                sparse = tm.mma(MmaInstruction(
                    instr.ab_type, instr.cd_type, instr.shape,
                    sparse=True)).throughput_tflops()
            except UnsupportedInstruction:
                continue
            assert sparse >= dense * 0.9999

    def test_throughput_scales_with_sms(self, h800):
        """A consistently half-sized device (half the SMs, half the
        spec peaks) sustains exactly half the throughput."""
        from dataclasses import replace
        tm_full = TensorCoreTimingModel(h800)
        half = h800.with_overrides(
            num_sms=57,
            tensor_core=replace(
                h800.tensor_core,
                dense_peak_tflops={
                    k: v / 2
                    for k, v in
                    h800.tensor_core.dense_peak_tflops.items()
                },
            ),
        )
        tm_half = TensorCoreTimingModel(half)
        instr = MmaInstruction(DType.FP16, DType.FP32,
                               MatrixShape(16, 8, 16))
        assert tm_half.mma(instr).throughput_tflops() == pytest.approx(
            tm_full.mma(instr).throughput_tflops() / 2, rel=1e-6)


class TestOccupancyInvariants:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(32, 1024), st.integers(16, 128),
           st.integers(0, 100 * 1024))
    def test_more_resources_never_more_blocks(self, threads, regs,
                                              smem):
        h800 = get_device("H800")
        base = occupancy(h800, BlockConfig(threads, regs, smem))
        hungrier = occupancy(
            h800, BlockConfig(min(threads * 2, 1024), regs, smem))
        assert hungrier.blocks_per_sm <= base.blocks_per_sm * 2
        more_smem = occupancy(
            h800, BlockConfig(threads, regs, smem + 4096))
        assert more_smem.blocks_per_sm <= base.blocks_per_sm

    @settings(max_examples=100, deadline=None)
    @given(st.integers(32, 1024), st.integers(16, 255))
    def test_threads_never_exceed_sm_budget(self, threads, regs):
        h800 = get_device("H800")
        occ = occupancy(h800, BlockConfig(threads, regs))
        assert occ.blocks_per_sm * threads <= h800.max_threads_per_sm


class TestPowerInvariants:
    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1.0, max_value=5000.0),
           st.booleans(),
           st.floats(min_value=0.0, max_value=1e14))
    def test_throttled_power_never_exceeds_cap(self, tflops, sparse,
                                               operand_rate):
        h800 = get_device("H800")
        pm = PowerModel(h800)
        rep = pm.report(op="wgmma", ab=DType.FP16, cd=DType.FP32,
                        tflops=tflops, sparse=sparse,
                        operand_bytes_per_s=operand_rate)
        assert rep.power_watts <= h800.power_cap_watts * 1.001
        assert 0.0 <= rep.throttle_scale <= 1.0
        assert rep.throughput_tflops <= tflops * 1.0001

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=1.0, max_value=2000.0))
    def test_power_monotone_in_rate(self, tflops):
        pm = PowerModel(get_device("A100"))
        lo = pm.dynamic_watts(op="mma", ab=DType.FP16, cd=DType.FP16,
                              tflops=tflops)
        hi = pm.dynamic_watts(op="mma", ab=DType.FP16, cd=DType.FP16,
                              tflops=tflops * 2)
        assert hi == pytest.approx(2 * lo)


class TestLineageInvariants:
    """Invariants spanning the registered pack lineage — a newer
    datacenter generation never regresses on its headline resources,
    and shrinking a cache never makes the hierarchy faster."""

    _HBM_LINEAGE = ("V100", "A100", "H800", "B200")

    def test_fp16_tensor_peak_never_regresses(self):
        peaks = [get_device(n).tensor_core.dense_peak("fp16")
                 for n in self._HBM_LINEAGE]
        assert peaks == sorted(peaks), peaks

    def test_memory_bandwidth_never_regresses(self):
        bw = [get_device(n).dram.peak_bandwidth_gbps
              for n in self._HBM_LINEAGE]
        assert bw == sorted(bw), bw

    def test_l2_capacity_never_regresses(self):
        l2 = [get_device(n).cache.l2_size_kib
              for n in self._HBM_LINEAGE]
        assert l2 == sorted(l2), l2

    @pytest.mark.parametrize("dev", list_devices())
    def test_more_l2_never_slower(self, dev):
        """Mean latency over a reused working set is non-increasing in
        L2 capacity: the smaller-cache device must re-fetch from DRAM
        what the larger one keeps resident."""
        from dataclasses import replace

        import numpy as np

        from repro.memory import MemoryHierarchy

        big_dev = get_device(dev)
        small_dev = big_dev.with_overrides(
            cache=replace(big_dev.cache, l2_size_kib=512))
        # working set: fits the real L2, overflows the shrunken one
        ws_bytes = 2 * 1024 * 1024
        stride = big_dev.cache.line_bytes
        addrs = np.arange(0, ws_bytes, stride, dtype=np.int64)
        means = []
        for d in (big_dev, small_dev):
            h = MemoryHierarchy(d)
            h.load_many(addrs)            # warm pass
            means.append(h.load_many(addrs).mean_latency_clk)
        assert means[0] <= means[1] * 1.0001, means
