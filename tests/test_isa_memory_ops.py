"""Tests for memory-operation descriptors."""

from __future__ import annotations

import pytest

from repro.isa import CacheOp, CpAsync, LoadGlobal, LoadShared, Mapa, \
    TmaCopy


class TestCacheOp:
    def test_ca_allocates_both(self):
        assert CacheOp.CACHE_ALL.allocates_l1
        assert CacheOp.CACHE_ALL.allocates_l2

    def test_cg_bypasses_l1(self):
        assert not CacheOp.CACHE_GLOBAL.allocates_l1
        assert CacheOp.CACHE_GLOBAL.allocates_l2

    def test_volatile_bypasses_everything(self):
        assert not CacheOp.VOLATILE.allocates_l1
        assert not CacheOp.VOLATILE.allocates_l2


class TestLoadGlobal:
    def test_scalar(self):
        ld = LoadGlobal(4, 1)
        assert ld.bytes_per_thread == 4
        assert ld.bytes_per_warp == 128
        assert ld.opcode == "ld.global.ca.b32"

    def test_vectorized_float4(self):
        ld = LoadGlobal(4, 4, CacheOp.CACHE_GLOBAL)
        assert ld.bytes_per_thread == 16
        assert ld.bytes_per_warp == 512
        assert ld.opcode == "ld.global.cg.v4.b32"

    def test_size_limits(self):
        with pytest.raises(ValueError):
            LoadGlobal(8, 4)        # 32 bytes per thread: illegal
        with pytest.raises(ValueError):
            LoadGlobal(3, 1)
        with pytest.raises(ValueError):
            LoadGlobal(4, 3)


class TestLoadShared:
    def test_basic(self):
        ld = LoadShared(8, 1)
        assert ld.bytes_per_warp == 256
        assert ld.opcode == "ld.shared.b64"

    def test_too_wide(self):
        with pytest.raises(ValueError):
            LoadShared(8, 4)


class TestCpAsync:
    def test_granule_sizes(self):
        for b in (4, 8, 16):
            assert CpAsync(b).bytes_per_thread == b
        with pytest.raises(ValueError):
            CpAsync(32)

    def test_bypass_modifier(self):
        assert "cp.async.cg" in CpAsync(16, bypass_l1=True).opcode
        assert "cp.async.ca" in CpAsync(16, bypass_l1=False).opcode


class TestTmaCopy:
    def test_valid(self):
        t = TmaCopy(tile_bytes=16384, dims=2)
        assert "bulk.tensor.2d" in t.opcode

    def test_multicast_marker(self):
        t = TmaCopy(tile_bytes=1024, multicast=True)
        assert "multicast::cluster" in t.opcode

    def test_validation(self):
        with pytest.raises(ValueError):
            TmaCopy(tile_bytes=0)
        with pytest.raises(ValueError):
            TmaCopy(tile_bytes=64, dims=6)


class TestMapa:
    def test_opcode(self):
        assert Mapa(1).opcode == "mapa.shared::cluster.u32"

    def test_negative_rank(self):
        with pytest.raises(ValueError):
            Mapa(-1)
