"""Tests for the tiled GEMM driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa.dtypes import DType
from repro.numerics import FP16
from repro.tensorcore import TiledGemm


class TestTiledGemm:
    def test_result_matches_quantized_reference(self, h800):
        g = TiledGemm(h800, DType.FP16, DType.FP32)
        rng = np.random.default_rng(0)
        a = rng.normal(size=(70, 40))
        b = rng.normal(size=(40, 50))
        rep = g.run(a, b)
        ref = FP16.quantize(a) @ FP16.quantize(b)
        assert np.allclose(rep.result, ref, rtol=1e-6)
        assert rep.result.shape == (70, 50)

    def test_tile_selection_per_arch(self, h800, a100):
        gh = TiledGemm(h800, DType.FP16, DType.FP32)
        ga = TiledGemm(a100, DType.FP16, DType.FP32)
        assert gh.tile_shape.m == 64        # wgmma tile
        assert ga.tile_shape.m == 16        # mma tile

    def test_instruction_count_covers_padded_tiles(self, h800):
        g = TiledGemm(h800, DType.FP16, DType.FP32)
        rep = g.run(np.ones((65, 17)), np.ones((17, 257)))
        ts = g.tile_shape
        import math
        expect = (math.ceil(65 / ts.m) * math.ceil(257 / ts.n)
                  * math.ceil(17 / ts.k))
        assert rep.instructions == expect

    def test_flop_accounting(self, a100):
        g = TiledGemm(a100, DType.FP16, DType.FP32)
        rep = g.run(np.ones((32, 16)), np.ones((16, 8)))
        assert rep.flops == 2 * 32 * 16 * 8
        assert rep.est_seconds > 0
        assert rep.est_tflops > 100

    def test_c_addend(self, a100):
        g = TiledGemm(a100, DType.FP16, DType.FP32)
        c = np.full((4, 4), 3.0)
        rep = g.run(np.eye(4), np.eye(4), c=c)
        assert np.allclose(rep.result, np.eye(4) + 3.0)

    def test_dim_mismatch(self, h800):
        g = TiledGemm(h800, DType.FP16, DType.FP32)
        with pytest.raises(ValueError, match="inner dims"):
            g.run(np.ones((4, 5)), np.ones((6, 4)))

    def test_int8_gemm(self, h800):
        g = TiledGemm(h800, DType.INT8, DType.INT32)
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0, 6.0], [7.0, 8.0]])
        rep = g.run(a, b)
        assert np.array_equal(rep.result, a @ b)
