"""Smoke tests: every example script runs clean and says something.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in a subprocess exactly as a user would invoke it.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent \
    / "examples"
_EXPECT = {
    "quickstart.py": "wgmma",
    "dissect_memory.py": "P-chase latency",
    "tensorcore_sweep.py": "sparse wgmma",
    "llm_inference_study.py": "Table XII",
    "dsm_histogram_app.py": "np.bincount",
    "smith_waterman_dpx.py": "Smith-Waterman",
    "numerics_probe.py": "cache geometry",
    "custom_device.py": "H100 SXM5",
    "trace_simulation.py": "calibrated latency",
}


def _run(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.parametrize("name", sorted(_EXPECT))
def test_example_runs(name):
    out = _run(name)
    assert _EXPECT[name] in out
    assert "Traceback" not in out


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(_EXPECT)
