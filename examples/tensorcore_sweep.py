#!/usr/bin/env python
"""Tensor-core dissection: mma vs wgmma, dense vs sparse, SS vs RS.

Walks through the paper's §IV-C story on the H800 model:

1. the legacy ``mma`` path leaves ~37 % of the 4th-gen tensor core idle,
2. ``wgmma`` saturates it — but only for N ≥ 64,
3. sparse SS mode pays exactly the unpruned-A shared-memory traffic,
4. 2:4 sparsity actually computes the right numbers.

Run:  python examples/tensorcore_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import get_device
from repro.isa import (
    MatrixShape,
    MmaInstruction,
    OperandSource,
    WgmmaInstruction,
)
from repro.isa.dtypes import DType
from repro.tensorcore import (
    TensorCoreTimingModel,
    compress_2_4,
    decompress_2_4,
    prune_2_4,
    wgmma_functional,
)


def mma_vs_wgmma() -> None:
    h800 = get_device("H800")
    tm = TensorCoreTimingModel(h800)
    peak = h800.tc_peak_tflops("fp16")
    print(f"H800 FP16 dense peak: {peak:.1f} TFLOPS")
    m = tm.mma(MmaInstruction(DType.FP16, DType.FP32,
                              MatrixShape(16, 8, 16)))
    w = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 256))
    print(f"  mma   path: {m.throughput_tflops():6.1f} TFLOPS "
          f"({100 * m.fraction_of_peak():.1f}% of peak)")
    print(f"  wgmma path: {w.throughput_tflops():6.1f} TFLOPS "
          f"({100 * w.fraction_of_peak():.1f}% of peak)")


def n_sweep() -> None:
    tm = TensorCoreTimingModel(get_device("H800"))
    print("\nwgmma m64nNk16 (f16→f32) vs N:")
    print(f"{'N':>4} {'SS lat':>7} {'SS TFLOPS':>10} {'RS lat':>7} "
          f"{'RS TFLOPS':>10}")
    for n in (8, 16, 32, 64, 128, 256):
        ss = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, n,
                                       a_source=OperandSource.SHARED))
        rs = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, n,
                                       a_source=OperandSource.REGISTER))
        print(f"{n:>4} {ss.latency_clk:>7.1f} "
              f"{ss.throughput_tflops():>10.1f} {rs.latency_clk:>7.1f} "
              f"{rs.throughput_tflops():>10.1f}")
    print("→ use N ≥ 64 (the paper's advice).")


def sparse_ss_penalty() -> None:
    tm = TensorCoreTimingModel(get_device("H800"))
    print("\nsparse wgmma sp.m64n256k32, SS vs RS:")
    for src in OperandSource:
        t = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 256,
                                      sparse=True, a_source=src))
        print(f"  {src.value}: {t.latency_clk:.0f} clk, "
              f"{t.throughput_tflops():.0f} TFLOPS")
    print("→ the 16 extra SS cycles are exactly the unpruned "
          "64×32×2 B A-tile at 128 B/clk.")


def sparse_numerics() -> None:
    print("\n2:4 sparsity, functionally:")
    rng = np.random.default_rng(0)
    a = rng.normal(size=(64, 32))
    b = rng.normal(size=(32, 64))
    pruned = prune_2_4(a)
    op = compress_2_4(pruned)
    instr = WgmmaInstruction(DType.FP16, DType.FP32, 64, sparse=True)
    d = wgmma_functional(instr, decompress_2_4(op), b)
    dense_ref = pruned @ b
    rel = np.abs(d - dense_ref).max() / np.abs(dense_ref).max()
    print(f"  compressed A: {op.values.shape} values + "
          f"{op.metadata.shape} 2-bit indices")
    print(f"  sparse wgmma vs dense-on-pruned reference: "
          f"max rel err {rel:.2e} (FP16 input rounding only)")


if __name__ == "__main__":
    mma_vs_wgmma()
    n_sweep()
    sparse_ss_penalty()
    sparse_numerics()
