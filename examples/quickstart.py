#!/usr/bin/env python
"""Quickstart: devices, one experiment, one instruction timing.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import get_device, list_devices
from repro.core import run_experiment
from repro.isa import MatrixShape, MmaInstruction, WgmmaInstruction
from repro.isa.dtypes import DType
from repro.tensorcore import TensorCoreTimingModel


def main() -> None:
    print("Devices:", ", ".join(list_devices()))
    h800 = get_device("H800")
    print(f"\n{h800.marketing_name}: {h800.num_sms} SMs, "
          f"{h800.tc_peak_tflops('fp16'):.1f} TFLOPS FP16 dense, "
          f"{h800.dram.peak_bandwidth_gbps:.0f} GB/s")

    # --- time one instruction of each flavour ------------------------
    tm = TensorCoreTimingModel(h800)
    mma = tm.mma(MmaInstruction(DType.FP16, DType.FP32,
                                MatrixShape(16, 8, 16)))
    wgmma = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 256))
    print(f"\nmma.m16n8k16   : {mma.latency_clk:.1f} clk, "
          f"{mma.throughput_tflops():.0f} TFLOPS "
          f"({100 * mma.fraction_of_peak():.0f}% of peak)")
    print(f"wgmma.m64n256k16: {wgmma.latency_clk:.1f} clk, "
          f"{wgmma.throughput_tflops():.0f} TFLOPS "
          f"({100 * wgmma.fraction_of_peak():.0f}% of peak)")
    print("→ the paper's headline: only wgmma unlocks the 4th-gen "
          "tensor cores.")

    # --- regenerate a paper artefact ----------------------------------
    print()
    result = run_experiment("table04_mem_latency")
    print(result.render())


if __name__ == "__main__":
    main()
