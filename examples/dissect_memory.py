#!/usr/bin/env python
"""Memory-hierarchy dissection across three GPU generations.

Reproduces the §III-A methodology end to end: P-chase latency at every
level (including a cold-TLB variant the paper's warm-up avoids), the
sustained-throughput table, and the cache-capacity knee you can observe
by growing the probe array past L1.

Run:  python examples/dissect_memory.py
"""

from __future__ import annotations

from repro.arch import get_device
from repro.memory import (
    MemoryThroughputModel,
    PChase,
    measure_latencies,
)

DEVICES = ("RTX4090", "A100", "H800")


def latency_study() -> None:
    print("=== P-chase latency (cycles) ===")
    header = f"{'level':<10}" + "".join(f"{d:>10}" for d in DEVICES)
    print(header)
    results = {d: measure_latencies(get_device(d), fast=True)
               for d in DEVICES}
    for level in ("Shared", "L1 Cache", "L2 Cache", "Global"):
        row = f"{level:<10}"
        for d in DEVICES:
            row += f"{results[d][level]:>10.1f}"
        print(row)
    avg_l2_l1 = sum(results[d]["L2 Cache"] / results[d]["L1 Cache"]
                    for d in DEVICES) / 3
    print(f"\nL2/L1 latency ratio (avg): {avg_l2_l1:.1f}x "
          "(paper: 6.5x)")


def tlb_study() -> None:
    print("\n=== Why the paper warms the TLB ===")
    from dataclasses import replace
    h800 = get_device("H800")
    small = h800.with_overrides(cache=replace(h800.cache,
                                              l2_size_kib=2048))
    p = PChase(small)
    warm = p.global_latency(iters=512).mean_latency_clk
    cold = p.global_latency_cold_tlb(iters=512).mean_latency_clk
    print(f"global latency, warm TLB: {warm:.0f} clk")
    print(f"global latency, cold TLB: {cold:.0f} clk "
          f"(+{cold - warm:.0f} clk of page-walk per access)")


def capacity_knee() -> None:
    print("\n=== Finding the L1 capacity by growing the probe ===")
    h800 = get_device("H800")
    for kib in (64, 128, 192, 256, 320, 512):
        p = PChase(h800)
        r = p.l1_latency(array_kib=kib, iters=1024)
        marker = " <- past L1 capacity" if r.hits_at_level < 0.99 else ""
        print(f"array {kib:>4} KiB: {r.mean_latency_clk:7.1f} clk, "
              f"{100 * r.hits_at_level:5.1f}% L1 hits{marker}")


def throughput_study() -> None:
    print("\n=== Sustained throughput ===")
    for d in DEVICES:
        m = MemoryThroughputModel(get_device(d))
        l1 = m.l1("FP32.v4")
        l2 = m.l2("FP32.v4")
        g = m.global_memory()
        print(f"{d:<8} L1 {l1.value:6.1f} B/clk/SM | "
              f"L2 {l2.value:7.1f} B/clk | "
              f"DRAM {g.value:7.1f} GB/s "
              f"({100 * m.theoretical_fraction():.0f}% of peak) | "
              f"L2-vs-global {m.l2_vs_global_ratio():.2f}x")


if __name__ == "__main__":
    latency_study()
    tlb_study()
    capacity_knee()
    throughput_study()
