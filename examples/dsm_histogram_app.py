#!/usr/bin/env python
"""Distributed-shared-memory histogram: a complete cluster application.

Builds the paper's §III-D3(3) histogram on real simulated clusters —
every atomic increment actually lands in (possibly remote) block
shared memory through ``map_shared_rank`` — then sweeps cluster size ×
bin count to find the configuration frontier of Fig 9.

Run:  python examples/dsm_histogram_app.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import get_device
from repro.dsm import DsmHistogram, HistogramConfig, SmToSmNetwork


def functional_demo() -> None:
    h800 = get_device("H800")
    hist = DsmHistogram(h800)
    rng = np.random.default_rng(7)
    data = rng.integers(0, 512, 20_000)
    cfg = HistogramConfig(nbins=512, cluster_size=4, block_threads=128)
    counts = hist.compute(data, cfg)
    assert np.array_equal(counts, np.bincount(data, minlength=512))
    print(f"histogrammed {data.size} elements into {cfg.nbins} bins "
          f"across a {cfg.cluster_size}-block cluster — verified "
          "against np.bincount")
    print(f"remote fraction of increments: "
          f"{100 * cfg.remote_fraction:.0f}% "
          f"(each crossing the {SmToSmNetwork(h800).latency_clk:.0f}-"
          "cycle SM-to-SM network)")


def tuning_sweep() -> None:
    hist = DsmHistogram(get_device("H800"))
    print("\nthroughput (G elements/s) vs Nbins × cluster size:")
    for bt in (128, 512):
        print(f"\nblock {bt} threads")
        print(f"{'Nbins':>7}" + "".join(f"{f'CS={cs}':>9}"
                                        for cs in (1, 2, 4, 8)))
        for n in (256, 512, 1024, 2048, 4096):
            row = f"{n:>7}"
            for cs in (1, 2, 4, 8):
                r = hist.measure(HistogramConfig(n, cs, bt))
                row += f"{r.elements_per_second / 1e9:>9.1f}"
            print(row)
    print("\n→ big Nbins at CS=1 starve occupancy; clusters divide the "
          "bins and restore it; oversized clusters drown in SM-to-SM "
          "contention (Fig 9).")


def limiter_map() -> None:
    hist = DsmHistogram(get_device("H800"))
    print("\nlimiting resource per configuration (block 512):")
    for n in (1024, 4096):
        for cs in (1, 8):
            r = hist.measure(HistogramConfig(n, cs, 512))
            print(f"  Nbins={n:<5} CS={cs}: {r.limiter} "
                  f"({r.resident_blocks} resident blocks/SM)")


if __name__ == "__main__":
    functional_demo()
    tuning_sweep()
    limiter_map()
