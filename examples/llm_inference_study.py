#!/usr/bin/env python
"""LLM inference study: Table XII plus what-if exploration.

Regenerates the paper's decode-throughput table, then uses the model to
answer questions the paper raises but cannot sweep on real hardware:
how the FP8 story changes with batch size, and where each model stops
fitting on each device.

Run:  python examples/llm_inference_study.py
"""

from __future__ import annotations

from repro.arch import get_device
from repro.te import (
    LLAMA_MODELS,
    LlmInferenceModel,
    Precision,
    ShareGptWorkload,
)

DEVICES = ("RTX4090", "A100", "H800")
PRECISIONS = (Precision.FP32, Precision.BF16, Precision.FP8)


def table12() -> None:
    print("=== Table XII: tokens/s (batch 8, in/out <= 128) ===")
    print(f"{'GPU':<9}{'model':<14}" + "".join(
        f"{p.name:>9}" for p in PRECISIONS))
    for d in DEVICES:
        m = LlmInferenceModel(get_device(d))
        for name, spec in LLAMA_MODELS.items():
            row = f"{d:<9}{name:<14}"
            for p in PRECISIONS:
                row += f"{m.estimate(spec, p).cell:>9}"
            print(row)


def memory_frontier() -> None:
    print("\n=== Memory frontier (largest batch that fits) ===")
    spec = LLAMA_MODELS["llama-2-13B"]
    for d in DEVICES:
        m = LlmInferenceModel(get_device(d))
        fits = [b for b in (1, 2, 4, 8, 16, 32, 64, 128)
                if m.fits(spec, Precision.BF16, batch=b, max_seq=256)]
        top = max(fits) if fits else 0
        print(f"{d:<9} llama-2-13B BF16: up to batch {top}")


def sharegpt_workload() -> None:
    print("\n=== ShareGPT-shaped workload on H800 ===")
    m = LlmInferenceModel(get_device("H800"))
    wl = ShareGptWorkload(seed=0)
    reqs = wl.sample(64)
    print(f"sampled {len(reqs)} requests: median in "
          f"{sorted(r.input_len for r in reqs)[32]}, median out "
          f"{sorted(r.output_len for r in reqs)[32]} tokens")
    for p in (Precision.BF16, Precision.FP8):
        est = m.estimate_workload(LLAMA_MODELS["llama-2-7B"], p,
                                  n_requests=64)
        print(f"llama-2-7B {p.name}: {est.tokens_per_second:7.1f} "
              "tokens/s")
    print("→ decode is memory-bound: FP8 brings no speedup "
          "(the paper's Table XII finding).")


if __name__ == "__main__":
    table12()
    memory_frontier()
    sharegpt_workload()
