#!/usr/bin/env python
"""Extending the library: predict an H100 SXM5 the paper never tested.

The registry is open — a downstream user can describe a new GPU from
its public spec sheet and every model and experiment in the library
runs against it.  This script registers an H100 SXM5 (132 SMs, HBM3,
700 W) and predicts the paper's headline quantities for it.

Run:  python examples/custom_device.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.arch import (
    Architecture,
    CacheGeometry,
    ClockDomain,
    DeviceSpec,
    DramSpec,
    MemoryLatencies,
    MemoryWidths,
    TensorCoreSpec,
    get_device,
    register_device,
)
from repro.isa import MatrixShape, MmaInstruction, WgmmaInstruction
from repro.isa.dtypes import DType
from repro.memory import measure_latencies, MemoryThroughputModel
from repro.dsm import RingCopyBenchmark
from repro.tensorcore import TensorCoreTimingModel

H100_SXM = DeviceSpec(
    name="H100-SXM",
    marketing_name="H100 SXM5",
    architecture=Architecture.HOPPER,
    num_sms=132,
    cuda_cores_per_sm=128,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    clocks=ClockDomain(base_sm_mhz=1095.0, boost_sm_mhz=1980.0,
                       observed_sm_mhz=1980.0, memory_mhz=2619.0),
    cache=CacheGeometry(l1_size_kib=256, shared_max_kib=228,
                        l2_size_kib=50 * 1024),
    # Hopper-family latency signature (same SM design as the H800)
    mem_latencies=MemoryLatencies(shared_clk=29.0, l1_hit_clk=40.7,
                                  l2_hit_clk=263.0, dram_clk=200.0),
    mem_widths=MemoryWidths(
        l1_bytes_per_clk_sm=128.0, smem_bytes_per_clk_sm=128.0,
        l2_bytes_per_clk=5200.0, lsu_issue_per_clk=0.98,
        # full-rate FP64 on the SXM part
        fp64_add_bytes_per_clk_sm=256.0,
    ),
    dram=DramSpec(size_gib=80, mem_type="HBM3", bus_width_bits=5120,
                  peak_bandwidth_gbps=3350.0, refresh_overhead=0.03,
                  rw_turnaround_penalty=0.106),
    tensor_core=TensorCoreSpec(
        count=528, generation=4,
        dense_peak_tflops={"fp16": 989.5, "bf16": 989.5, "tf32": 494.7,
                           "fp8": 1979.0, "int8": 1979.0, "fp64": 66.9,
                           "binary": 15832.0},
    ),
    power_cap_watts=700.0,
    max_cluster_size=16,
)


def main() -> None:
    register_device(H100_SXM, overwrite=True)
    dev = get_device("H100-SXM")
    h800 = get_device("H800")

    print("=== Predicted H100 SXM5 vs measured H800 PCIe ===\n")

    lat = measure_latencies(dev, fast=True)
    print("memory latency (clk):", {k: round(v, 1)
                                    for k, v in lat.items()})
    bw = MemoryThroughputModel(dev).global_memory().value
    print(f"sustained DRAM bandwidth: {bw:.0f} GB/s "
          f"(H800: {MemoryThroughputModel(h800).global_memory().value:.0f})")

    tm = TensorCoreTimingModel(dev)
    w = tm.wgmma(WgmmaInstruction(DType.FP16, DType.FP32, 256))
    m = tm.mma(MmaInstruction(DType.FP16, DType.FP32,
                              MatrixShape(16, 8, 16)))
    print(f"\nwgmma fp16->f32: {w.throughput_tflops('zero'):.0f} TFLOPS"
          f" zero / {w.throughput_tflops('rand'):.0f} rand "
          "(700 W budget barely throttles)")
    print(f"legacy mma path: {m.throughput_tflops():.0f} TFLOPS "
          f"({100 * m.fraction_of_peak():.0f}% of peak — the Hopper "
          "mma deficit carries over)")

    rbc = RingCopyBenchmark(dev)
    print(f"\nDSM ring copy peak: {rbc.peak_tbps():.2f} TB/s "
          f"(H800: {RingCopyBenchmark(h800).peak_tbps():.2f})")


if __name__ == "__main__":
    main()
