#!/usr/bin/env python
"""Driving the mini SM simulator: from microbenchmarks to kernels.

Rebuilds the paper's two measurement idioms as instruction traces —
the dependent chain (latency) and the ILP stream (throughput) — runs
them through the cycle-approximate SM engine, and shows the simulator
agreeing with the analytical models it shares calibration with.  Ends
with a mixed load/compute kernel to show where the time goes.

Run:  python examples/trace_simulation.py
"""

from __future__ import annotations

from repro.arch import get_device
from repro.isa import MatrixShape, MmaInstruction
from repro.isa.dtypes import DType
from repro.isa.lowering import FunctionalUnit
from repro.tensorcore.timing import MmaTiming
from repro.trace import SmSimulator, TraceBuilder


def latency_idiom() -> None:
    print("=== the latency microbenchmark, as a trace ===")
    h800 = get_device("H800")
    instr = MmaInstruction(DType.FP16, DType.FP32,
                           MatrixShape(16, 8, 16))
    timing = MmaTiming(h800, instr)
    n = 64
    res = SmSimulator().run(
        [TraceBuilder.mma_accumulate_loop(h800, instr, n)])
    print(f"dependent mma chain, n={n}: {res.cycles / n:.2f} clk per "
          f"instruction (calibrated latency: {timing.latency_clk})")


def throughput_idiom() -> None:
    print("\n=== the throughput microbenchmark, as a trace ===")
    h800 = get_device("H800")
    instr = MmaInstruction(DType.FP16, DType.FP32,
                           MatrixShape(16, 8, 16))
    timing = MmaTiming(h800, instr)
    n = 128
    for warps, accs in ((1, 1), (1, 8), (4, 8)):
        traces = [TraceBuilder.mma_independent(h800, instr, n,
                                               accumulators=accs)
                  for _ in range(warps)]
        res = SmSimulator().run(traces)
        flops = warps * n * instr.flops
        tflops = (flops / res.cycles * h800.num_sms
                  * h800.clocks.observed_hz / 1e12)
        print(f"{warps} warp(s) x ILP {accs}: {tflops:7.1f} TFLOPS "
              f"(IPC {res.ipc:.3f})")
    print(f"analytical Table VII value: "
          f"{timing.throughput_tflops():.1f} TFLOPS")


def mixed_kernel() -> None:
    print("\n=== a mixed load+compute inner loop ===")
    h800 = get_device("H800")
    lat = h800.mem_latencies.global_clk
    for warps in (1, 4, 8):
        traces = [TraceBuilder.load_compute(32, load_latency=lat)
                  for _ in range(warps)]
        res = SmSimulator().run(traces)
        lsu = res.unit_utilization(FunctionalUnit.LSU)
        rate = warps * 32 / res.cycles * 1000
        print(f"{warps} warp(s): {res.cycles:8.0f} clk total, "
              f"{rate:6.2f} load+FMA pairs per kclk, "
              f"LSU busy {100 * lsu:4.1f}%")
    print("→ wall time stays flat while work grows: extra warps hide "
          "the global-memory latency under each other — the same "
          "story as Tables XIII/XIV.")


if __name__ == "__main__":
    latency_idiom()
    throughput_idiom()
    mixed_kernel()
