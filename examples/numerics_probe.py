#!/usr/bin/env python
"""Numeric behaviour of the modelled tensor cores + FP8 accuracy.

Runs the Fasi-et-al-style probes (exact products, per-step rounding,
subnormals, TF32 truncation, FP8 overflow split) against the functional
engine, then measures what FP8 costs in accuracy through real layers —
the companion to the paper's throughput-only FP8 story.

Also demonstrates the microbenchmark methodology recovering cache
geometry from latency alone (capacity / sector / associativity sweeps).

Run:  python examples/numerics_probe.py
"""

from __future__ import annotations

from repro.arch import get_device
from repro.memory.cache_study import CacheProbe
from repro.te import Precision
from repro.te.accuracy import layer_accuracy, linear_accuracy
from repro.tensorcore.numerics_study import run_all_probes


def numeric_probes() -> None:
    print("=== Tensor-core numeric behaviour ===")
    for r in run_all_probes():
        mark = "ok " if r.passed else "BAD"
        print(f"[{mark}] {r.name:<24} {r.behaviour:<42} {r.detail}")


def accuracy_study() -> None:
    print("\n=== What FP8 costs in accuracy (te.Linear 256x256) ===")
    for rep in linear_accuracy():
        print(f"  {rep.precision.name:<5} rel RMS {rep.rel_rms:.2e}  "
              f"rel max {rep.rel_max:.2e}")
    print("\nfull TransformerLayer (FP8 Linears only — norms and "
          "attention stay high precision):")
    out = layer_accuracy()
    rep = out[Precision.FP8]
    print(f"  FP8 layer output error: rel RMS {rep.rel_rms:.2e}")


def cache_detection() -> None:
    print("\n=== Detecting H800 cache geometry from latency alone ===")
    probe = CacheProbe(get_device("H800"))
    params = probe.detect()
    geo = probe.device.cache
    print(f"  L1 capacity : detected {params.l1_capacity_bytes // 1024}"
          f" KiB (configured {geo.l1_size_kib} KiB)")
    print(f"  fill sector : detected {params.l1_sector_bytes} B "
          f"(configured {geo.sector_bytes} B)")
    print(f"  L1 ways     : detected {params.l1_ways} "
          f"(configured {geo.l1_associativity})")


if __name__ == "__main__":
    numeric_probes()
    accuracy_study()
    cache_detection()
