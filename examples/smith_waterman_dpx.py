#!/usr/bin/env python
"""Dynamic programming on DPX: alignment + all-pairs shortest paths.

The workloads DPX was built for (§III-D1), running on the
:mod:`repro.dp` library: every inner-loop max/min chain executes
through the DPX intrinsics, and the kernels price themselves on all
three devices — the algorithm-level version of Figs 6/7.

Run:  python examples/smith_waterman_dpx.py
"""

from __future__ import annotations

import numpy as np

from repro.arch import get_device
from repro.dp import (
    FloydWarshall,
    NeedlemanWunsch,
    SmithWaterman,
    estimate_kernel_time,
)

DEVICES = ("A100", "RTX4090", "H800")


def alignment_study() -> None:
    rng = np.random.default_rng(1)
    bases = np.array(list("ACGT"))
    a = "".join(rng.choice(bases, 96))
    b = "".join(rng.choice(bases, 30)) + a[20:70] \
        + "".join(rng.choice(bases, 30))

    sw = SmithWaterman(match=3, mismatch=-2, gap=4)
    nw = NeedlemanWunsch(match=3, mismatch=-2, gap=4)
    local = sw.align(a, b)
    glob = nw.align(a, b)
    print(f"Smith-Waterman  ({len(a)}x{len(b)}): score {local.score}, "
          f"{local.dpx_calls} DPX calls "
          f"({local.dpx_calls_per_cell:.0f}/cell)")
    print(f"Needleman-Wunsch          : score {glob.score}")

    print("\nestimated kernel time (fused add+max+relu inner loop):")
    for d in DEVICES:
        est = estimate_kernel_time(get_device(d), local.dpx_calls)
        tag = "hardware DPX" if est.hardware_dpx else "emulated"
        print(f"  {d:<8} {est.seconds * 1e6:8.4f} us  ({tag})")


def graph_study() -> None:
    print("\nFloyd-Warshall on a random 64-node graph:")
    rng = np.random.default_rng(2)
    n = 64
    edges = [(int(u), int(v), int(w))
             for u, v, w in zip(rng.integers(0, n, 400),
                                rng.integers(0, n, 400),
                                rng.integers(1, 20, 400))]
    res = FloydWarshall().run(FloydWarshall.from_edges(n, edges))
    reachable = int((res.distances < (1 << 28)).sum())
    print(f"  {res.dpx_calls} __viaddmin_s32 relaxations, "
          f"{reachable}/{n * n} pairs reachable")
    for d in ("A100", "H800"):
        est = estimate_kernel_time(get_device(d), res.dpx_calls,
                                   function_name="__viaddmin_s32")
        print(f"  {d:<8} {est.seconds * 1e6:8.3f} us")


if __name__ == "__main__":
    alignment_study()
    graph_study()
